package sched_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"m2cc/internal/ctrace"
	"m2cc/internal/event"
	"m2cc/internal/faultinject"
	"m2cc/internal/sched"
)

func TestPriorityOrderOnOneWorker(t *testing.T) {
	// With one worker and all tasks spawned up front, execution follows
	// the §2.3.4 class order regardless of spawn order.
	s := sched.New(1, nil)
	var mu sync.Mutex
	var order []string
	add := func(kind ctrace.TaskKind, name string) {
		s.Spawn(kind, 0, name, sched.Priority(kind, 0), nil, nil, func(*sched.Task) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		})
	}
	// Occupy the single worker slot while the tasks are spawned in
	// reverse class order, so the ready queue decides who runs first.
	release := make(chan struct{})
	s.Spawn(ctrace.KindLexor, 0, "hold", sched.Priority(ctrace.KindLexor, 0),
		nil, nil, func(*sched.Task) { <-release })
	add(ctrace.KindShortStmtCG, "short")
	add(ctrace.KindLongStmtCG, "long")
	add(ctrace.KindDefParseDecl, "defparse")
	add(ctrace.KindSplitter, "split")
	add(ctrace.KindLexor, "lex")
	close(release)
	s.Wait()
	want := []string{"lex", "split", "defparse", "long", "short"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestLongerTasksFirstWithinClass(t *testing.T) {
	s := sched.New(1, nil)
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	s.Spawn(ctrace.KindLexor, 0, "hold", sched.Priority(ctrace.KindLexor, 0),
		nil, nil, func(*sched.Task) { <-release })
	for _, c := range []struct {
		name string
		size int64
	}{{"small", 10}, {"big", 1000}, {"mid", 100}} {
		name := c.name
		s.Spawn(ctrace.KindLongStmtCG, 0, name, sched.Priority(ctrace.KindLongStmtCG, c.size),
			nil, nil, func(*sched.Task) {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			})
	}
	close(release)
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "big" || order[1] != "mid" || order[2] != "small" {
		t.Fatalf("order %v, want big mid small (§2.3.4: long before short)", order)
	}
}

func TestAvoidedEventsGateTasks(t *testing.T) {
	s := sched.New(4, nil)
	g1, g2 := event.New(), event.New()
	var ran atomic.Bool
	s.Spawn(ctrace.KindLexor, 0, "gated", 0, []*event.Event{g1, g2}, nil,
		func(*sched.Task) { ran.Store(true) })
	time.Sleep(5 * time.Millisecond)
	if ran.Load() {
		t.Fatal("task ran before its gates fired")
	}
	g1.Fire()
	time.Sleep(5 * time.Millisecond)
	if ran.Load() {
		t.Fatal("task ran with one gate still unfired")
	}
	g2.Fire()
	s.Wait()
	if !ran.Load() {
		t.Fatal("task never ran")
	}
}

func TestHandledWaitReleasesSlot(t *testing.T) {
	// One worker: task A blocks on an event fired by task B.  B can only
	// run if A's handled wait released the worker slot.
	s := sched.New(1, nil)
	e := event.New()
	var sequence []string
	var mu sync.Mutex
	log := func(m string) { mu.Lock(); sequence = append(sequence, m); mu.Unlock() }

	s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(t *sched.Task) {
		log("A-start")
		t.HandledWait(e)
		log("A-resume")
	})
	s.Spawn(ctrace.KindSplitter, 0, "B", 1, nil, nil, func(t *sched.Task) {
		log("B")
		t.Ctx.FireEvent(e)
	})
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"A-start", "B", "A-resume"}
	for i := range want {
		if i >= len(sequence) || sequence[i] != want[i] {
			t.Fatalf("sequence %v, want %v", sequence, want)
		}
	}
}

func TestHandledWaitOnFiredEventIsFree(t *testing.T) {
	s := sched.New(1, nil)
	e := event.New()
	e.Fire()
	done := false
	s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(t *sched.Task) {
		t.HandledWait(e) // must return immediately
		done = true
	})
	s.Wait()
	if !done {
		t.Fatal("task did not finish")
	}
}

func TestProducerBoost(t *testing.T) {
	// When A blocks on an event produced by P, the supervisor runs P
	// before other ready tasks even if P has a worse class priority.
	s := sched.New(1, nil)
	e := event.New()
	var mu sync.Mutex
	var order []string
	log := func(m string) { mu.Lock(); order = append(order, m); mu.Unlock() }

	s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(t *sched.Task) {
		log("A")
		t.HandledWait(e)
		log("A2")
	})
	// "other" has better class priority than producer, but producer
	// must be preferred once A blocks on e.
	producer := s.Spawn(ctrace.KindMerge, 0, "producer",
		sched.Priority(ctrace.KindMerge, 0), nil, nil, func(t *sched.Task) {
			log("producer")
			t.Ctx.FireEvent(e)
		})
	s.SetProducer(e, producer)
	s.Spawn(ctrace.KindSplitter, 0, "other",
		sched.Priority(ctrace.KindSplitter, 0), nil, nil, func(*sched.Task) { log("other") })
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) < 2 || order[0] != "A" || order[1] != "producer" {
		t.Fatalf("order %v: the DKY-resolving task must run first (§2.3.4)", order)
	}
}

func TestTaskDoneEventFires(t *testing.T) {
	s := sched.New(2, nil)
	a := s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(*sched.Task) {})
	ran := false
	s.Spawn(ctrace.KindSplitter, 0, "B", 1, []*event.Event{a.Done()}, nil,
		func(*sched.Task) { ran = true })
	s.Wait()
	if !ran {
		t.Fatal("task gated on Done never ran")
	}
}

func TestDeadlockWatchdogBreaksCycles(t *testing.T) {
	// Two tasks each waiting on an event only the other would fire: the
	// watchdog must fire the events and report, never hang.
	s := sched.New(2, nil)
	var msgs []string
	var mu sync.Mutex
	s.OnDeadlock = func(m string) { mu.Lock(); msgs = append(msgs, m); mu.Unlock() }
	e1, e2 := event.New(), event.New()
	s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(t *sched.Task) {
		t.HandledWait(e1)
		t.Ctx.FireEvent(e2)
	})
	s.Spawn(ctrace.KindLexor, 0, "B", 0, nil, nil, func(t *sched.Task) {
		t.HandledWait(e2)
		t.Ctx.FireEvent(e1)
	})
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock not broken")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(msgs) == 0 {
		t.Fatal("watchdog must report the broken deadlock")
	}
}

func TestManyTasksStress(t *testing.T) {
	s := sched.New(4, nil)
	var count atomic.Int64
	var spawnChild func(depth int) func(*sched.Task)
	spawnChild = func(depth int) func(*sched.Task) {
		return func(task *sched.Task) {
			count.Add(1)
			if depth < 3 {
				for i := 0; i < 3; i++ {
					s.Spawn(ctrace.KindShortStmtCG, 0, "c", 7, nil, task.Ctx, spawnChild(depth+1))
				}
			}
		}
	}
	for i := 0; i < 5; i++ {
		s.Spawn(ctrace.KindLexor, 0, "root", 0, nil, nil, spawnChild(0))
	}
	s.Wait()
	want := int64(5 * (1 + 3 + 9 + 27))
	if got := count.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
}

func TestSpawnRecordedInTrace(t *testing.T) {
	rec := ctrace.NewRecorder()
	s := sched.New(2, rec)
	g := event.New()
	parent := s.Spawn(ctrace.KindLexor, 1, "parent", 0, nil, nil, func(t *sched.Task) {
		s.Spawn(ctrace.KindSplitter, 1, "child", 1, []*event.Event{g}, t.Ctx, func(*sched.Task) {})
		t.Ctx.FireEvent(g)
	})
	_ = parent
	s.Wait()
	tr := rec.Trace()
	if len(tr.Tasks) != 2 {
		t.Fatalf("trace has %d tasks, want 2", len(tr.Tasks))
	}
	var sawChildSpawn bool
	for _, sp := range tr.Spawns {
		if sp.Parent != 0 && len(sp.Gates) == 1 {
			sawChildSpawn = true
		}
	}
	if !sawChildSpawn {
		t.Fatal("child spawn with gate not recorded")
	}
	for _, ti := range tr.Tasks {
		if ti.Cost <= 0 {
			t.Fatalf("task %s has no cost", ti.Label)
		}
	}
}

func TestBarrierWaitHoldsSlot(t *testing.T) {
	// A barrier wait must not release the worker: with one worker and a
	// barrier whose producer fires from outside the supervisor, a ready
	// task must NOT sneak in between.
	s := sched.New(1, nil)
	e := event.New()
	var order []string
	var mu sync.Mutex
	log := func(m string) { mu.Lock(); order = append(order, m); mu.Unlock() }
	s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(t *sched.Task) {
		log("A-start")
		t.BarrierWait(e)
		log("A-end")
	})
	s.Spawn(ctrace.KindSplitter, 0, "B", 1, nil, nil, func(*sched.Task) { log("B") })
	go func() {
		time.Sleep(10 * time.Millisecond)
		e.Fire()
	}()
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"A-start", "A-end", "B"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order %v, want %v (B must wait for the held slot)", order, want)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	// A panicking task must not crash the process: its Done event still
	// fires (so gated siblings run), its slot is released, OnPanic
	// reports kind/stream/label, and Wait returns.
	s := sched.New(1, nil)
	var mu sync.Mutex
	var faulted *sched.Task
	var recovered any
	s.OnPanic = func(task *sched.Task, r any, stack []byte) {
		mu.Lock()
		faulted, recovered = task, r
		mu.Unlock()
		if len(stack) == 0 {
			t.Error("OnPanic got an empty stack")
		}
	}
	bad := s.Spawn(ctrace.KindDefParseDecl, 3, "bad", 0, nil, nil, func(*sched.Task) {
		panic("boom")
	})
	var ran atomic.Bool
	s.Spawn(ctrace.KindSplitter, 0, "after", 1, []*event.Event{bad.Done()}, nil,
		func(*sched.Task) { ran.Store(true) })
	s.Wait()
	if !ran.Load() {
		t.Fatal("task gated on the panicking task's Done never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	if faulted == nil || faulted.Label != "bad" {
		t.Fatalf("OnPanic task = %v", faulted)
	}
	if faulted.Kind() != ctrace.KindDefParseDecl || faulted.Stream() != 3 {
		t.Fatalf("OnPanic kind/stream = %v/%d", faulted.Kind(), faulted.Stream())
	}
	if recovered != "boom" {
		t.Fatalf("recovered %v, want boom", recovered)
	}
	if s.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", s.Faults())
	}
}

func TestPanicForceFiresProducedEvents(t *testing.T) {
	// A waiter blocked on an event whose registered producer panics must
	// be released by the recovery's force-fire, without the deadlock
	// watchdog getting involved.
	s := sched.New(2, nil)
	var deadlocked atomic.Bool
	s.OnDeadlock = func(string) { deadlocked.Store(true) }
	s.OnPanic = func(*sched.Task, any, []byte) {}
	e := event.New()
	hold := event.New() // keeps the producer from running before A blocks
	var resumed atomic.Bool
	s.Spawn(ctrace.KindLexor, 0, "A", 0, nil, nil, func(task *sched.Task) {
		task.Ctx.FireEvent(hold)
		task.HandledWait(e)
		resumed.Store(true)
	})
	p := s.Spawn(ctrace.KindMerge, 0, "producer", 1, []*event.Event{hold}, nil,
		func(*sched.Task) { panic("producer died before firing") })
	s.SetProducer(e, p)
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("panic recovery did not unwedge the waiter")
	}
	if !resumed.Load() {
		t.Fatal("waiter never resumed")
	}
	if deadlocked.Load() {
		t.Fatal("watchdog fired; the panic recovery should have force-fired the event")
	}
}

func TestExternalWaitStallTimeout(t *testing.T) {
	// An ExternalWait on an event no one will ever fire must return
	// false after StallTimeout instead of hanging the compilation.
	s := sched.New(2, nil)
	s.StallTimeout = 10 * time.Millisecond
	foreign := event.New()
	var timedOut atomic.Bool
	s.Spawn(ctrace.KindDefParseDecl, 0, "waiter", 0, nil, nil, func(task *sched.Task) {
		timedOut.Store(!task.ExternalWait(foreign))
	})
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled external wait never timed out")
	}
	if !timedOut.Load() {
		t.Fatal("ExternalWait reported the event as fired")
	}
}

func TestExternalWaitFiredBeforeDeadline(t *testing.T) {
	s := sched.New(2, nil)
	s.StallTimeout = time.Minute
	foreign := event.New()
	var ok atomic.Bool
	s.Spawn(ctrace.KindDefParseDecl, 0, "waiter", 0, nil, nil, func(task *sched.Task) {
		ok.Store(task.ExternalWait(foreign))
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		foreign.Fire()
	}()
	s.Wait()
	if !ok.Load() {
		t.Fatal("ExternalWait reported a stall for a fired event")
	}
}

func TestDeadlockReportNamesStuckTasks(t *testing.T) {
	// The watchdog message must carry a scheduler state dump naming the
	// stuck tasks and the producers of the events they wait on.
	s := sched.New(2, nil)
	var mu sync.Mutex
	var msg string
	s.OnDeadlock = func(m string) { mu.Lock(); msg = m; mu.Unlock() }
	e1, e2 := event.New(), event.New()
	alpha := s.Spawn(ctrace.KindLexor, 0, "Alpha", 0, nil, nil, func(task *sched.Task) {
		task.HandledWait(e1)
		task.Ctx.FireEvent(e2)
	})
	beta := s.Spawn(ctrace.KindLexor, 0, "Beta", 0, nil, nil, func(task *sched.Task) {
		task.HandledWait(e2)
		task.Ctx.FireEvent(e1)
	})
	s.SetProducer(e1, beta)
	s.SetProducer(e2, alpha)
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock not broken")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, want := range []string{"Alpha", "Beta", "scheduler state", "produced by", "blocked"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock report missing %q:\n%s", want, msg)
		}
	}
}

// TestStealDispatch pins the steal path deterministically: a running
// task on a two-worker Supervisor spawns a child, which lands on the
// spawner's local queue; the idle second slot finds its own queue and
// the overflow queue empty and must steal the child.
func TestStealDispatch(t *testing.T) {
	s := sched.New(2, nil)
	release := make(chan struct{})
	var childRan atomic.Bool
	s.Spawn(ctrace.KindSplitter, 0, "parent", sched.Priority(ctrace.KindSplitter, 0),
		nil, nil, func(p *sched.Task) {
			// The child is pushed to this slot's local queue (spawn
			// affinity); this slot stays busy until the child has run,
			// so only a steal can dispatch it.
			s.Spawn(ctrace.KindLongStmtCG, 0, "child", sched.Priority(ctrace.KindLongStmtCG, 0),
				nil, p.Ctx, func(*sched.Task) { childRan.Store(true) })
			<-release
		})
	// The child's spawn transaction hands it to the idle slot via a
	// steal before Spawn returns, but only the run itself proves it.
	for i := 0; i < 1000 && !childRan.Load(); i++ {
		time.Sleep(time.Millisecond)
	}
	close(release)
	s.Wait()
	if !childRan.Load() {
		t.Fatal("stolen child never ran")
	}
	if c := s.Counters(); c.Steals != 1 {
		t.Fatalf("counters %+v, want exactly 1 steal", c)
	} else if c.LocalPushes != 1 {
		t.Fatalf("counters %+v, want the child pushed to the spawner's local queue", c)
	}
}

// TestGlobalQueueModeUsesNoLocalQueues pins the baseline topology:
// with GlobalQueue set, every push and pop goes through the overflow
// queue and nothing is stolen.
func TestGlobalQueueModeUsesNoLocalQueues(t *testing.T) {
	s := sched.New(4, nil)
	s.GlobalQueue = true
	var n atomic.Int64
	s.Spawn(ctrace.KindSplitter, 0, "parent", sched.Priority(ctrace.KindSplitter, 0),
		nil, nil, func(p *sched.Task) {
			for i := 0; i < 8; i++ {
				s.Spawn(ctrace.KindLongStmtCG, 0, "child", sched.Priority(ctrace.KindLongStmtCG, 0),
					nil, p.Ctx, func(*sched.Task) { n.Add(1) })
			}
		})
	s.Wait()
	if n.Load() != 8 {
		t.Fatalf("ran %d children, want 8", n.Load())
	}
	c := s.Counters()
	if c.LocalPushes != 0 || c.LocalPops != 0 || c.Steals != 0 {
		t.Fatalf("global-queue mode touched local queues: %+v", c)
	}
	if c.OverflowPushes != 9 || c.OverflowPops != 9 {
		t.Fatalf("counters %+v, want all 9 tasks through the overflow queue", c)
	}
}

// TestPanicStealInjection arms the PanicSteal fault point: the stolen
// task panics before its body runs, and panic isolation must contain
// it exactly like any other task fault — Done fires, Wait returns, the
// fault is counted.
func TestPanicStealInjection(t *testing.T) {
	s := sched.New(2, nil)
	s.Inject = faultinject.New().Arm(faultinject.PanicSteal, 1)
	var onPanic atomic.Int64
	s.OnPanic = func(_ *sched.Task, recovered any, _ []byte) {
		if _, ok := recovered.(*faultinject.Injected); !ok {
			t.Errorf("recovered %v, want *faultinject.Injected", recovered)
		}
		onPanic.Add(1)
	}
	release := make(chan struct{})
	var childRan atomic.Bool
	var child *sched.Task
	s.Spawn(ctrace.KindSplitter, 0, "parent", sched.Priority(ctrace.KindSplitter, 0),
		nil, nil, func(p *sched.Task) {
			child = s.Spawn(ctrace.KindLongStmtCG, 0, "child", sched.Priority(ctrace.KindLongStmtCG, 0),
				nil, p.Ctx, func(*sched.Task) { childRan.Store(true) })
			<-release
		})
	for i := 0; i < 1000 && s.Faults() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	close(release)
	s.Wait()
	if childRan.Load() {
		t.Fatal("injected steal panic did not stop the child body")
	}
	if s.Faults() != 1 || onPanic.Load() != 1 {
		t.Fatalf("faults %d, OnPanic calls %d; want 1 and 1", s.Faults(), onPanic.Load())
	}
	if !child.Done().Fired() {
		t.Fatal("panicked child's Done event must fire")
	}
	if c := s.Counters(); c.Steals != 1 {
		t.Fatalf("counters %+v, want the child dispatched via a steal", c)
	}
}
