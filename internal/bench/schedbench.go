package bench

import (
	"fmt"
	"runtime"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/obs"
	"m2cc/internal/profile"
	"m2cc/internal/symtab"
	"m2cc/internal/workload"
)

// SchedBenchResult quantifies the Supervisor's scheduling overhead on
// the standard suite workload: wall clock at the requested worker
// count, allocations per compiled module, and the blocked-time blame
// the critical-path profiler assigns to scheduler transitions (queue
// delay + dispatch latency, as opposed to genuine dependency stalls).
//
// Two in-process dispatch disciplines are timed side by side:
//
//   - steal: the per-worker local run queues with randomized work
//     stealing and a global overflow queue (the default);
//   - global: every push and pop goes through the single shared
//     priority queue, the pre-work-stealing discipline kept as the
//     benchmark baseline (core.Options.GlobalQueue).
//
// Baseline* fields compare against a committed before-snapshot
// (BENCH_sched_before.json, captured at the commit before the
// scheduler overhaul) when one is supplied.  Field tags match
// BENCH_sched.json.
type SchedBenchResult struct {
	Benchmark string  `json:"benchmark"` // "sched"
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	Workers   int     `json:"workers"`
	Runs      int     `json:"runs"`
	Programs  int     `json:"programs"`

	WallMs       float64 `json:"wall_ms"`        // best pass, steal dispatch
	GlobalWallMs float64 `json:"global_wall_ms"` // best pass, global-queue dispatch (0 = mode unavailable)
	StealVsGlobalX float64 `json:"steal_vs_global_x"` // GlobalWallMs / WallMs

	AllocsPerCompile float64 `json:"allocs_per_compile"` // heap allocations per compiled module
	BytesPerCompile  float64 `json:"bytes_per_compile"`

	// Blocked-time blame from an observed pass (steal dispatch):
	// dependency stalls vs scheduler-attributable delay (post-fire
	// queue time plus spawn-to-dispatch latency on the critical path).
	TotalBlockedMs  float64 `json:"total_blocked_ms"`
	TotalQueueMs    float64 `json:"total_queue_ms"`
	CritQueueMs     float64 `json:"crit_queue_ms"`
	CritDispatchMs  float64 `json:"crit_dispatch_ms"`
	SerialFraction  float64 `json:"serial_fraction"`
	SpeedupBound    float64 `json:"speedup_bound"`

	// Scheduler queue traffic over the observed pass (zero before the
	// work-stealing overhaul).
	Sched obs.SchedCounters `json:"sched"`

	// Cross-commit comparison against BENCH_sched_before.json.
	BaselineWallMs   float64 `json:"baseline_wall_ms,omitempty"`
	BaselineAllocs   float64 `json:"baseline_allocs_per_compile,omitempty"`
	BaselineBlockedMs float64 `json:"baseline_total_blocked_ms,omitempty"`
	ImprovementX     float64 `json:"improvement_x,omitempty"` // baseline wall / steal wall
}

func (r SchedBenchResult) String() string {
	s := fmt.Sprintf(
		"Scheduler benchmark (seed %d, scale %g, %d programs, workers=%d, best of %d):\n"+
			"  steal dispatch:        %8.1f ms\n",
		r.Seed, r.Scale, r.Programs, r.Workers, r.Runs, r.WallMs)
	if r.GlobalWallMs > 0 {
		s += fmt.Sprintf(
			"  global-queue dispatch: %8.1f ms  (steal is %.2fx)\n",
			r.GlobalWallMs, r.StealVsGlobalX)
	}
	s += fmt.Sprintf(
		"  allocations:           %8.0f allocs / %.0f KiB per compiled module\n"+
			"  blocked-time blame:    %.1f ms blocked (%.1f ms post-fire queue);"+
			" crit path: %.2f ms queue + %.2f ms dispatch\n"+
			"  serial fraction %.1f%%, speedup bound %.2fx\n",
		r.AllocsPerCompile, r.BytesPerCompile/1024,
		r.TotalBlockedMs, r.TotalQueueMs, r.CritQueueMs, r.CritDispatchMs,
		100*r.SerialFraction, r.SpeedupBound)
	if c := r.Sched; c.LocalPops+c.Steals+c.OverflowPops+c.Handoffs > 0 {
		s += fmt.Sprintf(
			"  queue traffic:         %d local pops, %d steals, %d overflow pops, %d direct handoffs\n",
			c.LocalPops, c.Steals, c.OverflowPops, c.Handoffs)
	}
	if r.BaselineWallMs > 0 {
		s += fmt.Sprintf(
			"  vs committed baseline: %8.1f ms -> %.1f ms  =>  %.2fx wall clock"+
				" (allocs %.0f -> %.0f, blocked %.1f ms -> %.1f ms)\n",
			r.BaselineWallMs, r.WallMs, r.ImprovementX,
			r.BaselineAllocs, r.AllocsPerCompile,
			r.BaselineBlockedMs, r.TotalBlockedMs)
	}
	return s
}

// SchedBench measures scheduler throughput and blame on the standard
// suite workload.  Every pass compiles the whole suite at the given
// worker count; wall clock is best-of-runs.  One additional observed
// pass (outside the timed comparison) feeds the critical-path profiler
// for the blocked-time blame, and one pass wrapped in memory-stats
// reads yields allocations per compiled module.  Any compilation
// failure or fault aborts the benchmark.
func SchedBench(cfg Config, runs, workers int) (SchedBenchResult, error) {
	cfg = cfg.withDefaults()
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 1
	}
	suite := workload.GenerateSuite(cfg.Seed, cfg.Scale)

	compile := func(o *obs.Observer, global bool) error {
		for _, p := range suite.Programs {
			res := core.Compile(p.Name, suite.Loader, core.Options{
				Workers: workers, Strategy: symtab.Skeptical, Obs: o,
				GlobalQueue: global,
			})
			if res.Failed() || res.Faulted {
				return fmt.Errorf("sched bench: %s failed to compile (faulted=%v):\n%s",
					p.Name, res.Faulted, res.Diags)
			}
		}
		return nil
	}

	best := func(global bool) (time.Duration, error) {
		b := time.Duration(1 << 62)
		for r := 0; r < runs; r++ {
			start := time.Now()
			if err := compile(nil, global); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b, nil
	}

	steal, err := best(false)
	if err != nil {
		return SchedBenchResult{}, err
	}
	global, err := best(true)
	if err != nil {
		return SchedBenchResult{}, err
	}

	// Allocation pass: heap churn per compiled module, steal dispatch.
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if err := compile(nil, false); err != nil {
		return SchedBenchResult{}, err
	}
	runtime.ReadMemStats(&m1)
	nprog := float64(len(suite.Programs))

	// Blame pass: observed, profiled.
	o := obs.New()
	if err := compile(o, false); err != nil {
		return SchedBenchResult{}, err
	}
	o.Finish()
	dump := o.Dump()
	p := profile.Build(&dump)
	var critQ, critD time.Duration
	for _, seg := range p.Path {
		switch seg.Kind {
		case profile.SegQueue:
			critQ += seg.Dur()
		case profile.SegDispatch:
			critD += seg.Dur()
		}
	}

	res := SchedBenchResult{
		Benchmark: "sched",
		Seed:      cfg.Seed,
		Scale:     cfg.Scale,
		Workers:   workers,
		Runs:      runs,
		Programs:  len(suite.Programs),
		WallMs:    float64(steal.Microseconds()) / 1000,

		AllocsPerCompile: float64(m1.Mallocs-m0.Mallocs) / nprog,
		BytesPerCompile:  float64(m1.TotalAlloc-m0.TotalAlloc) / nprog,

		TotalBlockedMs: float64(p.TotalBlocked.Microseconds()) / 1000,
		TotalQueueMs:   float64(p.TotalQueue.Microseconds()) / 1000,
		CritQueueMs:    float64(critQ.Microseconds()) / 1000,
		CritDispatchMs: float64(critD.Microseconds()) / 1000,
		SerialFraction: p.SerialFraction,
		SpeedupBound:   p.SpeedupBound,
		Sched:          dump.Sched,
	}
	res.GlobalWallMs = float64(global.Microseconds()) / 1000
	if res.WallMs > 0 && res.GlobalWallMs > 0 {
		res.StealVsGlobalX = res.GlobalWallMs / res.WallMs
	}
	return res, nil
}

// Compare fills the Baseline*/ImprovementX fields from a before
// snapshot (typically the committed BENCH_sched_before.json).
func (r *SchedBenchResult) Compare(before SchedBenchResult) {
	r.BaselineWallMs = before.WallMs
	r.BaselineAllocs = before.AllocsPerCompile
	r.BaselineBlockedMs = before.TotalBlockedMs
	if r.WallMs > 0 && before.WallMs > 0 {
		r.ImprovementX = before.WallMs / r.WallMs
	}
}
