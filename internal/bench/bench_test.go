package bench_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"m2cc/internal/bench"
	"m2cc/internal/sim"
	"m2cc/internal/symtab"
)

var (
	hOnce sync.Once
	h     *bench.Harness
	hErr  error
)

func harness(t *testing.T) *bench.Harness {
	t.Helper()
	hOnce.Do(func() {
		h, hErr = bench.New(bench.Config{Scale: 0.08, Seed: 1992})
	})
	if hErr != nil {
		t.Fatal(hErr)
	}
	return h
}

func TestTable1Shape(t *testing.T) {
	out := harness(t).Table1()
	for _, want := range []string{"Module size (bytes)", "Seq. compile time",
		"Imported interfaces", "Import nesting depth", "Number of procedures",
		"Number of streams"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3MonotoneColumns(t *testing.T) {
	hh := harness(t)
	prevMean := 1.0
	for p := 2; p <= hh.Cfg.MaxProcs; p++ {
		mean := hh.MeanSpeedup(p)
		if mean < 1.0 {
			t.Errorf("mean speedup %f < 1 at P=%d", mean, p)
		}
		if mean+0.05 < prevMean {
			t.Errorf("mean speedup decreased at P=%d: %f < %f", p, mean, prevMean)
		}
		prevMean = mean
	}
	out := hh.Table3()
	if !strings.Contains(out, "Synth") || !strings.Contains(out, "Q4") {
		t.Fatalf("Table 3 columns missing:\n%s", out)
	}
}

func TestFiguresRender(t *testing.T) {
	hh := harness(t)
	for name, text := range map[string]string{
		"fig1": hh.Figure1(), "fig2": hh.Figure2(), "fig3": hh.Figure3(),
		"fig4": hh.Figure4(), "fig7": hh.Figure7(),
	} {
		if len(strings.TrimSpace(text)) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	if !strings.Contains(hh.Figure2(), "linear") {
		t.Error("Figure 2 must include the linear reference")
	}
	if !strings.Contains(hh.Figure7(), "legend") {
		t.Error("Figure 7 must include the legend")
	}
}

func TestQuartileOrderingMatchesPaper(t *testing.T) {
	// The paper's Figure 3 finding: speedup grows with program size —
	// Table 3's quartile columns must be (weakly) increasing at P=8.
	out := harness(t).Table3()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1] // the P=8 row
	var n int
	var min, mean, max, synth, vm, q1, q2, q3, q4 float64
	if _, err := fmt.Sscanf(last, "%d | %f %f %f | %f %f | %f %f %f %f",
		&n, &min, &mean, &max, &synth, &vm, &q1, &q2, &q3, &q4); err != nil {
		t.Fatalf("cannot parse Table 3 row %q: %v", last, err)
	}
	if !(q1 <= q2*1.05 && q2 <= q3*1.05 && q3 <= q4*1.05) {
		t.Errorf("quartiles not increasing: %f %f %f %f", q1, q2, q3, q4)
	}
	if min > mean || mean > max {
		t.Errorf("min/mean/max inconsistent: %f %f %f", min, mean, max)
	}
}

func TestTable2AggregatesSuite(t *testing.T) {
	stats := harness(t).Table2(8)
	if stats.Lookups.Load() < 1000 {
		t.Fatalf("suspiciously few lookups: %d", stats.Lookups.Load())
	}
	text := stats.String()
	for _, want := range []string{"self", "Builtin", "qualified"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 2 missing %q rows:\n%s", want, text)
		}
	}
}

func TestStrategyAblationCoversAll(t *testing.T) {
	rel := harness(t).StrategyAblation(8)
	if len(rel) != int(symtab.NumStrategies) {
		t.Fatalf("got %d strategies", len(rel))
	}
	if rel[symtab.Skeptical] != 1.0 {
		t.Fatalf("skeptical must be the 1.0 baseline, got %f", rel[symtab.Skeptical])
	}
	for s, v := range rel {
		if v < 0.9 || v > 1.5 {
			t.Errorf("%s relative time %f out of plausible range", s, v)
		}
	}
}

func TestOverheadVirtualUnitsSmall(t *testing.T) {
	ov, err := harness(t).Overhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if ov.UnitsPct < 0 || ov.UnitsPct > 15 {
		t.Errorf("virtual overhead %.1f%% out of range (paper: 4.3%%)", ov.UnitsPct)
	}
}

func TestRenderTimelineShape(t *testing.T) {
	tl := []sim.Interval{
		{Proc: 0, Kind: 0, Start: 0, End: 50},
		{Proc: 1, Kind: 7, Start: 25, End: 100},
	}
	out := bench.RenderTimeline(tl, 2, 100, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 processor rows + axis, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "P1") || !strings.HasPrefix(lines[1], "P0") {
		t.Fatalf("row order wrong:\n%s", out)
	}
	if !strings.Contains(lines[1], "L") || !strings.Contains(lines[0], "G") {
		t.Fatalf("glyphs wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], ".") {
		t.Fatalf("idle time must render as dots:\n%s", out)
	}
}

// TestHarnessDeterministic: two harnesses with the same config produce
// identical tables — the property EXPERIMENTS.md's numbers rely on.
func TestHarnessDeterministic(t *testing.T) {
	a, err := bench.New(bench.Config{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.New(bench.Config{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table3() != b.Table3() {
		t.Fatal("Table 3 not reproducible")
	}
	if a.Table1() != b.Table1() {
		t.Fatal("Table 1 not reproducible")
	}
	if a.Figure7() != b.Figure7() {
		t.Fatal("Figure 7 not reproducible")
	}
	if a.Table2(8).String() != b.Table2(8).String() {
		t.Fatal("Table 2 not reproducible")
	}
}

// TestBoostAblationRuns exercises the §2.3.4 resolver-preference knob.
func TestBoostAblationRuns(t *testing.T) {
	ratio := harness(t).BoostAblation(8)
	if ratio < 0.95 || ratio > 1.2 {
		t.Fatalf("boost ablation ratio %f implausible", ratio)
	}
}
