package bench

import (
	"fmt"
	"strings"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/source"
	"m2cc/internal/streamcache"
)

// IncrBenchResult quantifies the stream cache on its target workload:
// the warm editor loop.  One module with many procedures is compiled
// cold (no cache), then recompiled after a one-procedure,
// line-preserving edit against a cache seeded with the pre-edit build —
// the paper's edit-one-procedure rebuild at stream granularity.  Field
// tags match BENCH_incr.json.
type IncrBenchResult struct {
	Benchmark string  `json:"benchmark"`
	Profile   string  `json:"profile"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	Workers   int     `json:"workers"`
	Runs      int     `json:"runs"`
	Procs     int     `json:"procs"`
	ColdMs    float64 `json:"cold_ms"`
	WarmMs    float64 `json:"warm_ms"`
	Speedup   float64 `json:"speedup"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
}

func (r IncrBenchResult) String() string {
	return fmt.Sprintf(
		"Incremental recompilation benchmark (%s; workers=%d, best of %d):\n"+
			"  cold (no cache):             %8.1f ms\n"+
			"  warm (one-procedure edit):   %8.1f ms\n"+
			"  speedup:                     %8.2fx\n"+
			"  cache: %d hits, %d misses\n",
		r.Profile, r.Workers, r.Runs, r.ColdMs, r.WarmMs, r.Speedup, r.Hits, r.Misses)
}

// IncrBenchMinSpeedup is the CI floor on the warm rebuild's speedup; a
// regression below it fails make bench-incr.
const IncrBenchMinSpeedup = 3.0

// IncrBenchProcs is the procedure count of the benchmark module.
const IncrBenchProcs = 48

// incrModule generates the benchmark module: procs procedures with
// nested control flow, expression-heavy designators, and
// cross-procedure calls (so parse, codegen, and lint carry realistic
// weight relative to lexing), each statement line carrying a
// per-procedure marker constant (so an edit to one procedure is a
// unique, line-preserving substitution), and a module body summing all
// of them.
func incrModule(procs, stmts int) string {
	var sb strings.Builder
	sb.WriteString("MODULE IncrBench;\nVAR total: INTEGER;\n")
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&sb, "\nPROCEDURE P%02d(x, y: INTEGER): INTEGER;\nVAR a, b, c, i: INTEGER;\nBEGIN\n  a := x; b := y; c := %d;\n", p, p)
		for i := 0; i < stmts; i++ {
			fmt.Fprintf(&sb, "  FOR i := 1 TO 8 DO IF (a + b * %d) MOD 3 = 0 THEN c := c + ((a * b + i) DIV (b MOD 5 + 1)) ELSE c := c - P%02d(a - 1, b) END END;\n",
				p*1000+i, (p+procs-1)%procs)
		}
		fmt.Fprintf(&sb, "  RETURN a + b + c\nEND P%02d;\n", p)
	}
	sb.WriteString("\nBEGIN\n  total := 0;\n")
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&sb, "  total := total + P%02d(%d, %d);\n", p, p+1, p+2)
	}
	sb.WriteString("  WriteInt(total, 0); WriteLn\nEND IncrBench.\n")
	return sb.String()
}

// IncrBench measures the cold build against the one-procedure-edit warm
// rebuild.  Each measured warm pass edits a marker constant inside one
// procedure (line-preserving, a distinct value per pass so no pass
// benefits from a previous pass's recording): exactly that procedure's
// stream and the module body recompile, every other stream replays from
// the cache.  The cold side compiles the identical edited text with no
// cache.  Both sides take the best of runs repetitions.
func IncrBench(cfg Config, runs, workers int) (IncrBenchResult, error) {
	cfg = cfg.withDefaults()
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 1
	}
	stmts := int(40 * cfg.Scale)
	if stmts < 8 {
		stmts = 8
	}
	base := incrModule(IncrBenchProcs, stmts)
	// The edit target: procedure P24's first marker statement.
	target := IncrBenchProcs / 2 * 1000
	marker := fmt.Sprintf("b * %d)", target)
	if !strings.Contains(base, marker) {
		return IncrBenchResult{}, fmt.Errorf("internal: edit marker %q not generated", marker)
	}
	edited := func(r int) string {
		return strings.Replace(base, marker, fmt.Sprintf("b * %d)", target+500+r), 1)
	}

	compile := func(text string, cache *streamcache.Cache) (time.Duration, error) {
		loader := source.NewMapLoader()
		loader.Add("IncrBench", source.Impl, text)
		start := time.Now()
		res := core.Compile("IncrBench", loader, core.Options{
			Workers: workers, StreamCache: cache, Check: true,
		})
		if res.Failed() {
			return 0, fmt.Errorf("IncrBench failed to compile:\n%s", res.Diags)
		}
		return time.Since(start), nil
	}

	best := func(cache *streamcache.Cache) (time.Duration, error) {
		lo := time.Duration(1 << 62)
		for r := 0; r < runs; r++ {
			d, err := compile(edited(r), cache)
			if err != nil {
				return 0, err
			}
			if d < lo {
				lo = d
			}
		}
		return lo, nil
	}

	cold, err := best(nil)
	if err != nil {
		return IncrBenchResult{}, err
	}

	cache := streamcache.New(0)
	if _, err := compile(base, cache); err != nil { // seeding pass, not measured
		return IncrBenchResult{}, err
	}
	warm, err := best(cache)
	if err != nil {
		return IncrBenchResult{}, err
	}

	s := cache.Stats()
	return IncrBenchResult{
		Benchmark: "streamcache",
		Profile:   fmt.Sprintf("%d-procedure module with lint, one-procedure line-preserving edit", IncrBenchProcs),
		Seed:      cfg.Seed,
		Scale:     cfg.Scale,
		Workers:   workers,
		Runs:      runs,
		Procs:     IncrBenchProcs,
		ColdMs:    float64(cold.Microseconds()) / 1000,
		WarmMs:    float64(warm.Microseconds()) / 1000,
		Speedup:   float64(cold) / float64(warm),
		Hits:      s.Hits,
		Misses:    s.Misses,
	}, nil
}
