package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"m2cc/internal/sim"
	"m2cc/internal/symtab"
)

// minMedMax summarizes a column of Table 1.
func minMedMax(vals []float64) (lo, med, hi float64) {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	return s[0], s[n/2], s[n-1]
}

// Table1 renders the test-suite characteristics table.  Sequential
// compile time is reported in thousands of deterministic work units
// (the simulator's virtual clock; see internal/ctrace/cost.go).
func (h *Harness) Table1() string {
	var bytes, seqT, imps, depth, procs, streams []float64
	for i, p := range h.Suite.Programs {
		bytes = append(bytes, float64(p.Bytes))
		seqT = append(seqT, h.seqUnits[i]/1000)
		imps = append(imps, float64(p.Imports))
		depth = append(depth, float64(p.ImportDepth))
		procs = append(procs, float64(p.Procedures))
		streams = append(streams, float64(p.Streams))
	}
	var sb strings.Builder
	sb.WriteString("Table 1: Description of Test Suite (37 generated programs)\n")
	fmt.Fprintf(&sb, "%-28s %10s %10s %10s\n", "Attribute", "Minimum", "Median", "Maximum")
	row := func(name string, vals []float64, format string) {
		lo, med, hi := minMedMax(vals)
		fmt.Fprintf(&sb, "%-28s %10s %10s %10s\n", name,
			fmt.Sprintf(format, lo), fmt.Sprintf(format, med), fmt.Sprintf(format, hi))
	}
	row("Module size (bytes)", bytes, "%.0f")
	row("Seq. compile time (kunits)", seqT, "%.1f")
	row("Imported interfaces", imps, "%.0f")
	row("Import nesting depth", depth, "%.0f")
	row("Number of procedures", procs, "%.0f")
	row("Number of streams", streams, "%.0f")
	return sb.String()
}

// Table3 renders the full speedup summary.
func (h *Harness) Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Summary of Speedup Data (self-relative, simulated Firefly)\n")
	fmt.Fprintf(&sb, "%2s | %5s %5s %5s | %6s %5s | %5s %5s %5s %5s\n",
		"N", "Min", "Mean", "Max", "Synth", "VM", "Q1", "Q2", "Q3", "Q4")
	for p := 2; p <= h.Cfg.MaxProcs; p++ {
		lo, hi := h.minMax(p)
		fmt.Fprintf(&sb, "%2d | %5.2f %5.2f %5.2f | %6.2f %5.2f | %5.2f %5.2f %5.2f %5.2f\n",
			p, lo, h.MeanSpeedup(p), hi,
			h.synthSpeedup[p-1], h.speedups[h.bestIdx][p-1],
			h.quartileMean(0, p), h.quartileMean(1, p),
			h.quartileMean(2, p), h.quartileMean(3, p))
	}
	return sb.String()
}

// series is one labelled speedup curve.
type series struct {
	label string
	vals  []float64 // index p-1
}

// chart renders speedup curves as an ASCII plot plus a value table.
func (h *Harness) chart(title string, ss []series, withLinear bool) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	maxP := h.Cfg.MaxProcs
	if withLinear {
		lin := make([]float64, maxP)
		for p := 1; p <= maxP; p++ {
			lin[p-1] = float64(p)
		}
		ss = append([]series{{label: "linear", vals: lin}}, ss...)
	}
	top := 1.0
	for _, s := range ss {
		for _, v := range s.vals {
			if v > top {
				top = v
			}
		}
	}
	const rows = 16
	const colw = 8
	marks := "*+xo#@%&"
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", maxP*colw+6))
	}
	for si, s := range ss {
		for p := 1; p <= maxP; p++ {
			r := rows - 1 - int(math.Round((s.vals[p-1]/top)*float64(rows-1)))
			if r < 0 {
				r = 0
			}
			c := 6 + (p-1)*colw + colw/2
			grid[r][c] = marks[si%len(marks)]
		}
	}
	for r := 0; r < rows; r++ {
		val := top * float64(rows-1-r) / float64(rows-1)
		fmt.Fprintf(&sb, "%5.1f %s\n", val, strings.TrimRight(string(grid[r]), " "))
	}
	sb.WriteString("      " + strings.Repeat("-", maxP*colw) + "\n")
	sb.WriteString("      ")
	for p := 1; p <= maxP; p++ {
		sb.WriteString(fmt.Sprintf("%*d", colw/2+1, p) + strings.Repeat(" ", colw-colw/2-1))
	}
	sb.WriteString(" processors\n")
	for si, s := range ss {
		fmt.Fprintf(&sb, "  %c = %-10s", marks[si%len(marks)], s.label)
		for p := 1; p <= maxP; p++ {
			fmt.Fprintf(&sb, " %5.2f", s.vals[p-1])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure1 renders the test-suite self-relative speedup curve.
func (h *Harness) Figure1() string {
	mean := make([]float64, h.Cfg.MaxProcs)
	for p := 1; p <= h.Cfg.MaxProcs; p++ {
		mean[p-1] = h.MeanSpeedup(p)
	}
	return h.chart("Figure 1: Test Suite Self Relative Speedup",
		[]series{{label: "suite mean", vals: mean}}, false)
}

// Figure2 renders the best-case comparison: Synth.mod, the best
// human-authored module and the linear reference.
func (h *Harness) Figure2() string {
	return h.chart("Figure 2: Best Case Self Relative Speedup",
		[]series{
			{label: "Synth", vals: h.synthSpeedup},
			{label: h.Suite.Programs[h.bestIdx].Name, vals: h.speedups[h.bestIdx]},
		}, true)
}

// Figure3 renders the per-quartile speedup curves.
func (h *Harness) Figure3() string {
	var ss []series
	for q := 0; q < 4; q++ {
		vals := make([]float64, h.Cfg.MaxProcs)
		for p := 1; p <= h.Cfg.MaxProcs; p++ {
			vals[p-1] = h.quartileMean(q, p)
		}
		ss = append(ss, series{label: fmt.Sprintf("Q%d", q+1), vals: vals})
	}
	return h.chart("Figure 3: Speedup by Quartiles", ss, false)
}

// RenderTimeline draws per-processor activity as rows of task-kind
// glyphs (L lex, S split, I import, P parse/decl, G stmt-analysis/
// codegen, M merge; '.' idle), the reproduction of the WatchTool views.
func RenderTimeline(tl []sim.Interval, procs int, makespan float64, width int) string {
	if width <= 0 {
		width = 100
	}
	rows := make([][]byte, procs)
	// Per-cell dominant kind by accumulated time.
	acc := make([]map[byte]float64, procs*width)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, iv := range tl {
		c0 := int(iv.Start / makespan * float64(width))
		c1 := int(iv.End / makespan * float64(width))
		if c1 >= width {
			c1 = width - 1
		}
		for c := c0; c <= c1; c++ {
			cell := iv.Proc*width + c
			if acc[cell] == nil {
				acc[cell] = make(map[byte]float64)
			}
			lo := math.Max(iv.Start, makespan*float64(c)/float64(width))
			hi := math.Min(iv.End, makespan*float64(c+1)/float64(width))
			if hi > lo {
				acc[cell][iv.Kind.Glyph()] += hi - lo
			}
		}
	}
	for p := 0; p < procs; p++ {
		for c := 0; c < width; c++ {
			cell := acc[p*width+c]
			best, bestV := byte('.'), 0.0
			for g, v := range cell {
				if v > bestV {
					best, bestV = g, v
				}
			}
			rows[p][c] = best
		}
	}
	var sb strings.Builder
	for p := procs - 1; p >= 0; p-- {
		fmt.Fprintf(&sb, "P%d |%s|\n", p, rows[p])
	}
	fmt.Fprintf(&sb, "    0%*s\n", width, fmt.Sprintf("%.0f units", makespan))
	return sb.String()
}

// timelineFor simulates one trace at p processors with the timeline on.
func (h *Harness) timelineFor(idx int, p int) (string, *sim.Result) {
	o := h.simOpts(p)
	o.CollectTimeline = true
	var r *sim.Result
	if idx < 0 {
		r = sim.New(h.synthTrace, o).Run()
	} else {
		r = sim.New(h.traces[idx], o).Run()
	}
	return RenderTimeline(r.Timeline, p, r.Makespan, 100), r
}

// Figure4 renders the WatchTool snapshot: one program per quartile plus
// the synthetic module, each compiled on MaxProcs simulated processors.
func (h *Harness) Figure4() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: WatchTool Snapshot (processor activity, P=%d)\n", h.Cfg.MaxProcs)
	for q := 0; q < 4; q++ {
		ids := h.quartiles[q]
		idx := ids[len(ids)/2]
		tlText, r := h.timelineFor(idx, h.Cfg.MaxProcs)
		fmt.Fprintf(&sb, "\n[%s — quartile %d, speedup %.2f]\n%s",
			h.Suite.Programs[idx].Name, q+1, h.speedups[idx][h.Cfg.MaxProcs-1], tlText)
		_ = r
	}
	tlText, _ := h.timelineFor(-1, h.Cfg.MaxProcs)
	fmt.Fprintf(&sb, "\n[Synth.mod — best case, speedup %.2f]\n%s",
		h.synthSpeedup[h.Cfg.MaxProcs-1], tlText)
	return sb.String()
}

// Figure7 renders the activity view of one large compilation with the
// task-kind legend of the paper's Figure 7.
func (h *Harness) Figure7() string {
	// Pick the largest program by sequential time.
	idx := 0
	for i := range h.seqUnits {
		if h.seqUnits[i] > h.seqUnits[idx] {
			idx = i
		}
	}
	tlText, r := h.timelineFor(idx, h.Cfg.MaxProcs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: Concurrent Compiler Processor Activity (%s, P=%d)\n",
		h.Suite.Programs[idx].Name, h.Cfg.MaxProcs)
	sb.WriteString(tlText)
	fmt.Fprintf(&sb, "legend: L lexical  S splitter  I importer  P parser/decl-analysis  G stmt-analysis/codegen  M merge  . idle\n")
	fmt.Fprintf(&sb, "makespan %.0f units, utilization %.0f%%, DKY blockages %d\n",
		r.Makespan, 100*r.Utilization(h.Cfg.MaxProcs), r.Blocks)
	return sb.String()
}

// RenderTable2 renders the aggregated lookup statistics.
func (h *Harness) RenderTable2(p int) string {
	return fmt.Sprintf("Table 2: Identifier Lookup Statistics (Skeptical handling, P=%d)\n%s",
		p, h.Table2(p))
}

// RenderStrategyAblation renders the §2.2 DKY-strategy comparison.
func (h *Harness) RenderStrategyAblation(p int) string {
	rel := h.StrategyAblation(p)
	var sb strings.Builder
	fmt.Fprintf(&sb, "DKY strategy ablation (suite total simulated time at P=%d, skeptical = 1.000)\n", p)
	for s := symtab.Avoidance; s < symtab.NumStrategies; s++ {
		fmt.Fprintf(&sb, "  %-12s %.3f\n", s, rel[s])
	}
	sb.WriteString("paper: the choice of DKY strategy caused about 10% variation (§2.2)\n")
	return sb.String()
}
