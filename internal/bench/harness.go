// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§4) from this reproduction's
// compiler, workload generator and Firefly-substitute simulator.
//
//	Table 1   — test-suite characteristics
//	Figure 1  — test-suite self-relative speedup, 1–8 processors
//	Figure 2  — best-case speedup (Synth.mod vs best human module vs linear)
//	Figure 3  — speedup by sequential-compile-time quartiles
//	Figure 4  — WatchTool-style processor activity, one program per quartile
//	Table 2   — identifier lookup statistics under Skeptical handling
//	Table 3   — the full speedup summary
//	Figure 7  — activity view of one large compilation with task kinds
//
// plus the claims quantified in the text: the ~4% single-processor
// overhead of the concurrent compiler (§4.2), the ~10% spread between
// DKY strategies (§2.2) and the ~3% cost of re-processing procedure
// headings (§2.4).
package bench

import (
	"fmt"
	"sort"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/ctrace"
	"m2cc/internal/seq"
	"m2cc/internal/sim"
	"m2cc/internal/source"
	"m2cc/internal/symtab"
	"m2cc/internal/workload"
)

// Config parameterizes one harness run.
type Config struct {
	Seed     int64   // workload seed (default 1992)
	Scale    float64 // program body scale in (0,1]; 1 = paper-sized suite
	Beta     float64 // bus-contention coefficient (default sim.DefaultBeta)
	MaxProcs int     // processor sweep upper bound (default 8)
	Startup  float64 // fixed serial compilation cost in units (default 3500)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1992
	}
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Beta == 0 {
		c.Beta = sim.DefaultBeta
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 8
	}
	if c.Startup == 0 {
		c.Startup = 3500
	}
	return c
}

// Harness holds the prepared workload, traces and simulation results.
type Harness struct {
	Cfg   Config
	Suite *workload.Suite

	SynthInfo workload.ProgramInfo

	traces     []*ctrace.Trace // per suite program
	synthTrace *ctrace.Trace
	seqUnits   []float64 // sequential virtual time per program
	synthSeq   float64

	// speedups[i][p-1]: self-relative speedup of program i on p
	// processors; synthSpeedup likewise for Synth.mod.
	speedups     [][]float64
	synthSpeedup []float64

	quartiles [][]int // program indexes per quartile, by sequential time
	bestIdx   int     // the human-authored module with the best speedup ("VM")
}

// New generates the workload, collects one deterministic trace per
// program (Workers=1) and sweeps the simulated processor counts.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	h := &Harness{Cfg: cfg}
	h.Suite = workload.GenerateSuite(cfg.Seed, cfg.Scale)

	synthProcs := 128
	synthReps := int(28 * cfg.Scale)
	if synthReps < 2 {
		synthReps = 2
	}
	// Layer-0 interfaces: their streams parallelize lexing and parsing
	// without any cross-stream references, so no DKY can arise.
	var synthImports []string
	for i := 0; i < workload.LibPerLayer; i++ {
		synthImports = append(synthImports, fmt.Sprintf("Lib%d", i))
	}
	h.SynthInfo = workload.GenerateSynth(h.Suite.Loader, synthProcs, synthReps, synthImports)

	for _, p := range h.Suite.Programs {
		tr, err := collectTrace(p.Name, h.Suite.Loader)
		if err != nil {
			return nil, err
		}
		h.traces = append(h.traces, tr)
		h.seqUnits = append(h.seqUnits, seq.Compile(p.Name, h.Suite.Loader).Units)
	}
	tr, err := collectTrace("Synth", h.Suite.Loader)
	if err != nil {
		return nil, err
	}
	h.synthTrace = tr
	h.synthSeq = seq.Compile("Synth", h.Suite.Loader).Units

	h.sweep()
	h.split()
	return h, nil
}

func collectTrace(name string, loader source.Loader) (*ctrace.Trace, error) {
	res := core.Compile(name, loader, core.Options{Workers: 1, Trace: true})
	if res.Failed() {
		return nil, fmt.Errorf("%s failed to compile:\n%s", name, res.Diags)
	}
	return res.Trace, nil
}

// simOpts returns the paper-default simulation options.
func (h *Harness) simOpts(p int) sim.Options {
	return sim.Options{
		Processors: p, Strategy: symtab.Skeptical, Beta: h.Cfg.Beta,
		Startup: h.Cfg.Startup, LongBeforeShort: true, BoostResolver: true,
	}
}

// sweep computes self-relative speedups for every program and Synth.
func (h *Harness) sweep() {
	curve := func(tr *ctrace.Trace) []float64 {
		base := sim.New(tr, h.simOpts(1)).Run().Makespan
		out := make([]float64, h.Cfg.MaxProcs)
		for p := 1; p <= h.Cfg.MaxProcs; p++ {
			r := sim.New(tr, h.simOpts(p)).Run()
			out[p-1] = base / r.Makespan
		}
		return out
	}
	for _, tr := range h.traces {
		h.speedups = append(h.speedups, curve(tr))
	}
	h.synthSpeedup = curve(h.synthTrace)

	best, bestVal := 0, 0.0
	last := h.Cfg.MaxProcs - 1
	for i, sp := range h.speedups {
		if sp[last] > bestVal {
			bestVal = sp[last]
			best = i
		}
	}
	h.bestIdx = best
}

// split builds the sequential-compile-time quartiles (Figure 3 groups
// programs 10/9/9/9 as the paper groups 10/8/10/9 by absolute time).
func (h *Harness) split() {
	idx := make([]int, len(h.seqUnits))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.seqUnits[idx[a]] < h.seqUnits[idx[b]] })
	sizes := []int{10, 9, 9, 9}
	pos := 0
	for _, n := range sizes {
		end := pos + n
		if end > len(idx) {
			end = len(idx)
		}
		h.quartiles = append(h.quartiles, append([]int(nil), idx[pos:end]...))
		pos = end
	}
}

// MeanSpeedup returns the suite mean at p processors.
func (h *Harness) MeanSpeedup(p int) float64 {
	var sum float64
	for _, sp := range h.speedups {
		sum += sp[p-1]
	}
	return sum / float64(len(h.speedups))
}

// minMax returns the suite extremes at p processors.
func (h *Harness) minMax(p int) (lo, hi float64) {
	lo, hi = 1e18, 0
	for _, sp := range h.speedups {
		v := sp[p-1]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// quartileMean returns the mean speedup of quartile q at p processors.
func (h *Harness) quartileMean(q, p int) float64 {
	var sum float64
	for _, i := range h.quartiles[q] {
		sum += h.speedups[i][p-1]
	}
	return sum / float64(len(h.quartiles[q]))
}

// OverheadResult is the §4.2 single-processor comparison.
type OverheadResult struct {
	SeqWall  time.Duration
	Conc1    time.Duration
	Percent  float64 // (Conc1-Seq)/Seq × 100 — the paper reports 4.3%
	SeqUnits float64
	ConUnits float64
	UnitsPct float64
}

// Overhead measures sequential vs concurrent-with-one-worker wall time
// over the whole suite (runs repetitions, best-of to damp noise) plus
// the deterministic virtual-unit comparison.
//
// A compilation that fails (or faults, on the concurrent side) makes
// the timing a comparison of two different amounts of work, so the
// first such failure aborts the measurement with an error naming the
// program instead of silently reporting a meaningless percentage.
func (h *Harness) Overhead(runs int) (OverheadResult, error) {
	if runs < 1 {
		runs = 1
	}
	var res OverheadResult
	bestSeq, bestCon := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < runs; r++ {
		start := time.Now()
		for _, p := range h.Suite.Programs {
			if sres := seq.Compile(p.Name, h.Suite.Loader); sres.Failed() {
				return res, fmt.Errorf("overhead: sequential compile of %s failed:\n%s",
					p.Name, sres.Diags)
			}
		}
		if d := time.Since(start); d < bestSeq {
			bestSeq = d
		}
		start = time.Now()
		for _, p := range h.Suite.Programs {
			cres := core.Compile(p.Name, h.Suite.Loader, core.Options{Workers: 1})
			if cres.Failed() || cres.Faulted {
				return res, fmt.Errorf("overhead: concurrent compile of %s failed (faulted=%v):\n%s",
					p.Name, cres.Faulted, cres.Diags)
			}
		}
		if d := time.Since(start); d < bestCon {
			bestCon = d
		}
	}
	res.SeqWall, res.Conc1 = bestSeq, bestCon
	res.Percent = 100 * (float64(bestCon) - float64(bestSeq)) / float64(bestSeq)
	for i := range h.Suite.Programs {
		res.SeqUnits += h.seqUnits[i]
		res.ConUnits += h.traces[i].TotalCost()
	}
	res.UnitsPct = 100 * (res.ConUnits - res.SeqUnits) / res.SeqUnits
	return res, nil
}

// StrategyAblation returns the suite mean 8-processor makespan per DKY
// strategy, normalized to Skeptical (the §2.2 "about 10%" claim).
func (h *Harness) StrategyAblation(p int) map[symtab.Strategy]float64 {
	totals := make(map[symtab.Strategy]float64)
	for strat := symtab.Avoidance; strat < symtab.NumStrategies; strat++ {
		for _, tr := range h.traces {
			o := h.simOpts(p)
			o.Strategy = strat
			totals[strat] += sim.New(tr, o).Run().Makespan
		}
	}
	base := totals[symtab.Skeptical]
	out := make(map[symtab.Strategy]float64)
	for k, v := range totals {
		out[k] = v / base
	}
	return out
}

// HeaderAblation recompiles the suite under §2.4 alternative 3 and
// returns total simulated time at p processors relative to alternative
// 1 (the paper measured about 3% slower).
func (h *Harness) HeaderAblation(p int) (float64, error) {
	var alt1, alt3 float64
	for i, prog := range h.Suite.Programs {
		alt1 += sim.New(h.traces[i], h.simOpts(p)).Run().Makespan
		res := core.Compile(prog.Name, h.Suite.Loader, core.Options{
			Workers: 1, Trace: true, Headers: core.HeaderReprocess,
		})
		if res.Failed() {
			return 0, fmt.Errorf("%s failed under header alternative 3:\n%s", prog.Name, res.Diags)
		}
		alt3 += sim.New(res.Trace, h.simOpts(p)).Run().Makespan
	}
	return alt3 / alt1, nil
}

// OrderingAblation returns suite total makespan without the
// long-before-short rule, relative to with it (§2.3.4).
func (h *Harness) OrderingAblation(p int) float64 {
	var with, without float64
	for _, tr := range h.traces {
		with += sim.New(tr, h.simOpts(p)).Run().Makespan
		o := h.simOpts(p)
		o.LongBeforeShort = false
		without += sim.New(tr, o).Run().Makespan
	}
	return without / with
}

// BoostAblation returns suite total makespan without the §2.3.4
// preference for running the DKY-resolving task first, relative to
// with it.
func (h *Harness) BoostAblation(p int) float64 {
	var with, without float64
	for _, tr := range h.traces {
		with += sim.New(tr, h.simOpts(p)).Run().Makespan
		o := h.simOpts(p)
		o.BoostResolver = false
		without += sim.New(tr, o).Run().Makespan
	}
	return without / with
}

// Table2 aggregates simulated Skeptical lookup statistics at p
// processors over the whole suite.
func (h *Harness) Table2(p int) *symtab.Stats {
	agg := symtab.NewStats()
	for _, tr := range h.traces {
		o := h.simOpts(p)
		o.CollectStats = true
		agg.Add(sim.New(tr, o).Run().Stats)
	}
	return agg
}
