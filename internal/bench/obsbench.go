package bench

import (
	"fmt"
	"sort"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/obs"
	"m2cc/internal/workload"
)

// ObsBenchResult quantifies the observability layer's runtime cost on
// the standard suite workload: the same compilations run with no
// observer attached versus with a fresh obs.Observer per pass.  The
// design budget is OverheadPct < 5 — instrumentation cheap enough to
// leave on.  Field tags match BENCH_obs.json.
type ObsBenchResult struct {
	Benchmark   string  `json:"benchmark"` // "obs"
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	Runs        int     `json:"runs"`
	Programs    int     `json:"programs"`
	BaseMs      float64 `json:"base_ms"`      // best pass, no observer
	ObservedMs  float64 `json:"observed_ms"`  // best pass, observer attached
	OverheadPct float64 `json:"overhead_pct"` // 100×(observed-base)/base

	// Aggregates from the best observed pass, proving the observer saw
	// the whole run while it was being timed.
	Tasks       int     `json:"tasks"`
	Spans       int     `json:"spans"`
	EventFires  int64   `json:"event_fires"`
	EventWaits  int64   `json:"event_waits"`
	Utilization float64 `json:"utilization"`

	// Serve measures the daemon-side telemetry plane (PR 9); nil when
	// the serve section was not requested.
	Serve *ServeObsResult `json:"serve,omitempty"`
}

// ServeObsMaxOverheadPct is the serving-path tracing budget: the
// sampled side must stay within this percentage of the off side.
// m2bench enforces it with a non-zero exit so CI fails loudly.
const ServeObsMaxOverheadPct = 5.0

// ServeObsResult quantifies what -trace=sampled costs the serving
// path.  Both sides run the full per-request telemetry the daemon
// always pays (trace-store admission, latency histogram, rolling
// window); the traced side additionally records every request with a
// live Observer.  In sampled mode exactly 1-in-SampleN requests pay
// that recording cost and the rest pay the identical always-on plane,
// so the sampled overhead is the measured every-request overhead
// divided by SampleN — estimating it this way instead of timing
// sampled mode directly shrinks the noise on the reported number by
// the same factor of SampleN as the signal.
type ServeObsResult struct {
	Runs              int     `json:"runs"`
	Requests          int     `json:"requests"` // per pass
	SampleN           int     `json:"sample_n"`
	OffMs             float64 `json:"off_ms"`              // best pass, -trace=off
	TracedMs          float64 `json:"traced_ms"`           // best pass, every request traced
	TracedOverheadPct float64 `json:"traced_overhead_pct"` // median per-round paired ratio
	OverheadPct       float64 `json:"overhead_pct"`        // TracedOverheadPct / SampleN: -trace=sampled
	Traced            int     `json:"traced"`              // traces held by the traced store
}

func (r ServeObsResult) String() string {
	return fmt.Sprintf(
		"  serve section (%d requests/pass, sample 1-in-%d, median of %d paired rounds):\n"+
			"    trace=off:           %8.1f ms\n"+
			"    trace=all:           %8.1f ms  (%+.1f%% per traced request)\n"+
			"    trace=sampled:       %+7.1f%%  (budget: <%.0f%%, %d traces held)\n",
		r.Requests, r.SampleN, r.Runs,
		r.OffMs, r.TracedMs, r.TracedOverheadPct,
		r.OverheadPct, ServeObsMaxOverheadPct, r.Traced)
}

func (r ObsBenchResult) String() string {
	s := fmt.Sprintf(
		"Observability overhead benchmark (seed %d, scale %g, %d programs, workers=%d, best of %d):\n"+
			"  no observer:         %8.1f ms\n"+
			"  observer attached:   %8.1f ms\n"+
			"  overhead:            %+7.1f%%  (budget: <5%%)\n"+
			"  observed: %d tasks, %d spans, %d event fires, %d waits, utilization %.0f%%\n",
		r.Seed, r.Scale, r.Programs, r.Workers, r.Runs,
		r.BaseMs, r.ObservedMs, r.OverheadPct,
		r.Tasks, r.Spans, r.EventFires, r.EventWaits, 100*r.Utilization)
	if r.Serve != nil {
		s += r.Serve.String()
	}
	return s
}

// ObsBench measures the wall-clock cost of the internal/obs layer on
// the standard suite workload.  Both sides compile the identical
// program set with the same worker count; the observed side attaches a
// fresh Observer per pass (so span tables never amortize across
// repetitions — each pass pays full recording cost).  Both sides take
// the best of runs repetitions to damp scheduler noise, and any
// compilation failure aborts the measurement with an error.
func ObsBench(cfg Config, runs, workers int) (ObsBenchResult, error) {
	cfg = cfg.withDefaults()
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 1
	}
	suite := workload.GenerateSuite(cfg.Seed, cfg.Scale)

	pass := func(o *obs.Observer) (time.Duration, error) {
		start := time.Now()
		for _, p := range suite.Programs {
			res := core.Compile(p.Name, suite.Loader, core.Options{
				Workers: workers, Obs: o,
			})
			if res.Failed() || res.Faulted {
				return 0, fmt.Errorf("obs bench: %s failed to compile (faulted=%v):\n%s",
					p.Name, res.Faulted, res.Diags)
			}
		}
		return time.Since(start), nil
	}

	base := time.Duration(1 << 62)
	for r := 0; r < runs; r++ {
		d, err := pass(nil)
		if err != nil {
			return ObsBenchResult{}, err
		}
		if d < base {
			base = d
		}
	}

	observed := time.Duration(1 << 62)
	var bestObs *obs.Observer
	for r := 0; r < runs; r++ {
		o := obs.New()
		d, err := pass(o)
		if err != nil {
			return ObsBenchResult{}, err
		}
		if d < observed {
			observed, bestObs = d, o
		}
	}

	serve, err := serveObsBench(suite, runs, workers)
	if err != nil {
		return ObsBenchResult{}, err
	}

	m := bestObs.Snapshot()
	return ObsBenchResult{
		Benchmark:   "obs",
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		Workers:     workers,
		Runs:        runs,
		Programs:    len(suite.Programs),
		BaseMs:      float64(base.Microseconds()) / 1000,
		ObservedMs:  float64(observed.Microseconds()) / 1000,
		OverheadPct: 100 * (float64(observed) - float64(base)) / float64(base),
		Tasks:       m.Tasks,
		Spans:       m.Spans,
		EventFires:  m.EventFires,
		EventWaits:  m.EventWaits,
		Utilization: m.Utilization,
		Serve:       &serve,
	}, nil
}

// serveObsBench times the serving path's per-request telemetry with
// tracing off versus sampled.  One "request" is what m2cd does per
// admission minus HTTP: trace-store Admit, one compilation (with the
// sampled entry's Observer attached when there is one), the latency
// histogram and rolling-window updates, then Finish.
//
// The sampled cost is ~2% (a full observer amortized 1-in-N), so the
// measurement must be quieter than the budget it enforces.  Three
// things buy that.  The traced side records EVERY request — ~N times
// the signal of sampled mode — and the amortized division by SampleN
// at the end shrinks measurement noise by the same factor.  Within a
// round, each program's off request and traced request run back to
// back, so a GC pause or CPU burst that spans the adjacent pair lands
// on both sides of the per-round sums; rounds alternate which side
// goes first so any cost of going second (allocator or scheduler
// warmth) cancels too.  Across rounds, the overhead is the MEDIAN of
// the per-round ratios, which discards rounds where a hiccup
// straddled only one side of a pair.  This matters most on a loaded
// or single-CPU machine, where interference is bursty and a plain
// best-of-passes ratio swings by more than the budget itself.
const serveObsMinRuns = 9

func serveObsBench(suite *workload.Suite, runs, workers int) (ServeObsResult, error) {
	const sampleN, keep = 8, 64
	if runs < serveObsMinRuns {
		runs = serveObsMinRuns
	}
	hist := obs.NewHistogram(obs.DefaultLatencyBucketsMS)
	win := obs.NewRolling(60, time.Second)

	// request runs one serving-path request against store and returns
	// its wall time: trace-store admission, the compilation (with the
	// sampled entry's Observer when there is one), telemetry updates,
	// then Finish.
	request := func(store *obs.TraceStore, name string) (time.Duration, error) {
		reqStart := time.Now()
		_, e := store.Admit("")
		var o *obs.Observer
		if e != nil {
			o = e.Obs
		}
		res := core.Compile(name, suite.Loader, core.Options{
			Workers: workers, Obs: o,
		})
		if res.Failed() || res.Faulted {
			return 0, fmt.Errorf("serve bench: %s failed to compile (faulted=%v):\n%s",
				name, res.Faulted, res.Diags)
		}
		dur := time.Since(reqStart)
		durMS := float64(dur) / float64(time.Millisecond)
		hist.Observe(durMS)
		win.Add(durMS)
		if e != nil {
			e.Obs.Finish()
		}
		store.Finish(e, "bench", "/compile", "concurrent", 200, durMS, res.Streams)
		return dur, nil
	}

	inf := time.Duration(1 << 62)
	off, traced := inf, inf
	ratios := make([]float64, 0, runs)
	var tracedStore *obs.TraceStore
	for r := 0; r < runs; r++ {
		offStore := obs.NewTraceStore(obs.TraceOff, sampleN, keep)
		store := obs.NewTraceStore(obs.TraceAll, sampleN, keep)
		var dOff, dTraced time.Duration
		for _, p := range suite.Programs {
			first, second := offStore, store
			if r%2 == 1 {
				first, second = store, offStore
			}
			d1, err := request(first, p.Name)
			if err != nil {
				return ServeObsResult{}, err
			}
			d2, err := request(second, p.Name)
			if err != nil {
				return ServeObsResult{}, err
			}
			if r%2 == 1 {
				d1, d2 = d2, d1
			}
			dOff += d1
			dTraced += d2
		}
		if dOff < off {
			off = dOff
		}
		if dTraced < traced {
			traced, tracedStore = dTraced, store
		}
		ratios = append(ratios, float64(dTraced)/float64(dOff))
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (median + ratios[len(ratios)/2-1]) / 2
	}
	tracedPct := 100 * (median - 1)
	return ServeObsResult{
		Runs:              runs,
		Requests:          len(suite.Programs),
		SampleN:           sampleN,
		OffMs:             float64(off.Microseconds()) / 1000,
		TracedMs:          float64(traced.Microseconds()) / 1000,
		TracedOverheadPct: tracedPct,
		OverheadPct:       tracedPct / sampleN,
		Traced:            tracedStore.Held(),
	}, nil
}
