package bench

import (
	"fmt"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/obs"
	"m2cc/internal/workload"
)

// ObsBenchResult quantifies the observability layer's runtime cost on
// the standard suite workload: the same compilations run with no
// observer attached versus with a fresh obs.Observer per pass.  The
// design budget is OverheadPct < 5 — instrumentation cheap enough to
// leave on.  Field tags match BENCH_obs.json.
type ObsBenchResult struct {
	Benchmark   string  `json:"benchmark"` // "obs"
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	Runs        int     `json:"runs"`
	Programs    int     `json:"programs"`
	BaseMs      float64 `json:"base_ms"`      // best pass, no observer
	ObservedMs  float64 `json:"observed_ms"`  // best pass, observer attached
	OverheadPct float64 `json:"overhead_pct"` // 100×(observed-base)/base

	// Aggregates from the best observed pass, proving the observer saw
	// the whole run while it was being timed.
	Tasks       int     `json:"tasks"`
	Spans       int     `json:"spans"`
	EventFires  int64   `json:"event_fires"`
	EventWaits  int64   `json:"event_waits"`
	Utilization float64 `json:"utilization"`
}

func (r ObsBenchResult) String() string {
	return fmt.Sprintf(
		"Observability overhead benchmark (seed %d, scale %g, %d programs, workers=%d, best of %d):\n"+
			"  no observer:         %8.1f ms\n"+
			"  observer attached:   %8.1f ms\n"+
			"  overhead:            %+7.1f%%  (budget: <5%%)\n"+
			"  observed: %d tasks, %d spans, %d event fires, %d waits, utilization %.0f%%\n",
		r.Seed, r.Scale, r.Programs, r.Workers, r.Runs,
		r.BaseMs, r.ObservedMs, r.OverheadPct,
		r.Tasks, r.Spans, r.EventFires, r.EventWaits, 100*r.Utilization)
}

// ObsBench measures the wall-clock cost of the internal/obs layer on
// the standard suite workload.  Both sides compile the identical
// program set with the same worker count; the observed side attaches a
// fresh Observer per pass (so span tables never amortize across
// repetitions — each pass pays full recording cost).  Both sides take
// the best of runs repetitions to damp scheduler noise, and any
// compilation failure aborts the measurement with an error.
func ObsBench(cfg Config, runs, workers int) (ObsBenchResult, error) {
	cfg = cfg.withDefaults()
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 1
	}
	suite := workload.GenerateSuite(cfg.Seed, cfg.Scale)

	pass := func(o *obs.Observer) (time.Duration, error) {
		start := time.Now()
		for _, p := range suite.Programs {
			res := core.Compile(p.Name, suite.Loader, core.Options{
				Workers: workers, Obs: o,
			})
			if res.Failed() || res.Faulted {
				return 0, fmt.Errorf("obs bench: %s failed to compile (faulted=%v):\n%s",
					p.Name, res.Faulted, res.Diags)
			}
		}
		return time.Since(start), nil
	}

	base := time.Duration(1 << 62)
	for r := 0; r < runs; r++ {
		d, err := pass(nil)
		if err != nil {
			return ObsBenchResult{}, err
		}
		if d < base {
			base = d
		}
	}

	observed := time.Duration(1 << 62)
	var bestObs *obs.Observer
	for r := 0; r < runs; r++ {
		o := obs.New()
		d, err := pass(o)
		if err != nil {
			return ObsBenchResult{}, err
		}
		if d < observed {
			observed, bestObs = d, o
		}
	}

	m := bestObs.Snapshot()
	return ObsBenchResult{
		Benchmark:   "obs",
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		Workers:     workers,
		Runs:        runs,
		Programs:    len(suite.Programs),
		BaseMs:      float64(base.Microseconds()) / 1000,
		ObservedMs:  float64(observed.Microseconds()) / 1000,
		OverheadPct: 100 * (float64(observed) - float64(base)) / float64(base),
		Tasks:       m.Tasks,
		Spans:       m.Spans,
		EventFires:  m.EventFires,
		EventWaits:  m.EventWaits,
		Utilization: m.Utilization,
	}, nil
}
