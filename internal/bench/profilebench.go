package bench

import (
	"fmt"
	"math"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/obs"
	"m2cc/internal/profile"
	"m2cc/internal/sim"
	"m2cc/internal/symtab"
	"m2cc/internal/workload"
)

// ProfileBenchResult quantifies the critical-path profiler's cost on
// top of plain observation: the same compilations run with just an
// Observer attached versus with the full post-pass — Dump, Build,
// ExportTrace, and a P=1 simulator replay of the exported trace.  The
// budget is OverheadPct < 5 on top of -obs.  ReplayErrPct checks the
// obs→ctrace bridge: a P=1 replay with ReplayWaits must reproduce the
// exported trace's serial work total within 1%.  Field tags match
// BENCH_profile.json.
type ProfileBenchResult struct {
	Benchmark   string  `json:"benchmark"` // "profile"
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	Runs        int     `json:"runs"`
	Programs    int     `json:"programs"`
	ObsMs       float64 `json:"obs_ms"`       // best pass, observer only
	ProfiledMs  float64 `json:"profiled_ms"`  // best pass, observer + profile + export + replay
	OverheadPct float64 `json:"overhead_pct"` // 100×(profiled-obs)/obs; budget <5

	// Aggregates from the best profiled pass.
	Tasks          int     `json:"tasks"`
	EventsBlamed   int     `json:"events_blamed"`
	TotalBlockedMs float64 `json:"total_blocked_ms"`
	CritLenMs      float64 `json:"crit_len_ms"`
	SerialFraction float64 `json:"serial_fraction"`
	SpeedupBound   float64 `json:"speedup_bound"`

	// Replay fidelity: the exported trace's serial work total versus
	// the P=1 simulated makespan of the same trace, both in measured
	// microseconds of execution.
	TraceUnits   float64 `json:"trace_units"`
	ReplayUnits  float64 `json:"replay_units"`
	ReplayErrPct float64 `json:"replay_err_pct"` // acceptance: <1
}

func (r ProfileBenchResult) String() string {
	return fmt.Sprintf(
		"Critical-path profiler overhead benchmark (seed %d, scale %g, %d programs, workers=%d, best of %d):\n"+
			"  observer only:         %8.1f ms\n"+
			"  observer + profiler:   %8.1f ms\n"+
			"  overhead:              %+7.1f%%  (budget: <5%% on top of -obs)\n"+
			"  profiled: %d tasks, %d blamed events, %.1f ms blocked, crit path %.1f ms\n"+
			"  serial fraction %.1f%%, speedup bound %.2fx\n"+
			"  P=1 replay %.0f units vs trace %.0f units => %.3f%% error (budget: <1%%)\n",
		r.Seed, r.Scale, r.Programs, r.Workers, r.Runs,
		r.ObsMs, r.ProfiledMs, r.OverheadPct,
		r.Tasks, r.EventsBlamed, r.TotalBlockedMs, r.CritLenMs,
		100*r.SerialFraction, r.SpeedupBound,
		r.ReplayUnits, r.TraceUnits, r.ReplayErrPct)
}

// ProfileBench measures the wall-clock cost of the critical-path
// profiler (internal/profile) on the standard suite workload.  Both
// sides attach a fresh Observer per pass; the profiled side
// additionally dumps the observation, builds the blame profile,
// exports the obs→ctrace what-if trace, and replays it at P=1 — the
// complete `m2c -profile -whatif` post-pass — inside the timed region.
// Best of runs repetitions; any compilation failure aborts.
func ProfileBench(cfg Config, runs, workers int) (ProfileBenchResult, error) {
	cfg = cfg.withDefaults()
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 1
	}
	suite := workload.GenerateSuite(cfg.Seed, cfg.Scale)

	compile := func(o *obs.Observer) error {
		for _, p := range suite.Programs {
			res := core.Compile(p.Name, suite.Loader, core.Options{
				Workers: workers, Strategy: symtab.Skeptical, Obs: o,
			})
			if res.Failed() || res.Faulted {
				return fmt.Errorf("profile bench: %s failed to compile (faulted=%v):\n%s",
					p.Name, res.Faulted, res.Diags)
			}
		}
		return nil
	}

	base := time.Duration(1 << 62)
	for r := 0; r < runs; r++ {
		o := obs.New()
		start := time.Now()
		if err := compile(o); err != nil {
			return ProfileBenchResult{}, err
		}
		if d := time.Since(start); d < base {
			base = d
		}
	}

	type profiled struct {
		p      *profile.Profile
		replay *sim.Result
		units  float64
	}
	profiledPass := time.Duration(1 << 62)
	var best profiled
	for r := 0; r < runs; r++ {
		o := obs.New()
		start := time.Now()
		if err := compile(o); err != nil {
			return ProfileBenchResult{}, err
		}
		dump := o.Dump()
		p := profile.Build(&dump)
		tr := profile.ExportTrace(&dump)
		replay := sim.New(tr, sim.Options{
			Processors: 1, Strategy: symtab.Skeptical, ReplayWaits: true,
			LongBeforeShort: true, BoostResolver: true,
		}).Run()
		if d := time.Since(start); d < profiledPass {
			profiledPass = d
			best = profiled{p: p, replay: replay, units: tr.TotalCost()}
		}
	}

	errPct := 0.0
	if best.units > 0 {
		errPct = 100 * math.Abs(best.replay.Makespan-best.units) / best.units
	}
	return ProfileBenchResult{
		Benchmark:      "profile",
		Seed:           cfg.Seed,
		Scale:          cfg.Scale,
		Workers:        workers,
		Runs:           runs,
		Programs:       len(suite.Programs),
		ObsMs:          float64(base.Microseconds()) / 1000,
		ProfiledMs:     float64(profiledPass.Microseconds()) / 1000,
		OverheadPct:    100 * (float64(profiledPass) - float64(base)) / float64(base),
		Tasks:          best.p.Tasks,
		EventsBlamed:   len(best.p.Events),
		TotalBlockedMs: float64(best.p.TotalBlocked.Microseconds()) / 1000,
		CritLenMs:      float64(best.p.CritLen.Microseconds()) / 1000,
		SerialFraction: best.p.SerialFraction,
		SpeedupBound:   best.p.SpeedupBound,
		TraceUnits:     best.units,
		ReplayUnits:    best.replay.Makespan,
		ReplayErrPct:   errPct,
	}, nil
}
