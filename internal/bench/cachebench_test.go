package bench

import "testing"

// TestCacheBenchRuns checks the benchmark's plumbing (not its timing,
// which depends on the host): the batch compiles cleanly both cold and
// warm, and the warm passes actually exercise the cache.
func TestCacheBenchRuns(t *testing.T) {
	r, err := CacheBench(Config{}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Programs != CacheBenchPrograms {
		t.Fatalf("programs = %d, want %d", r.Programs, CacheBenchPrograms)
	}
	if r.ColdMs <= 0 || r.WarmMs <= 0 || r.Speedup <= 0 {
		t.Fatalf("degenerate timings: %+v", r)
	}
	if r.Misses == 0 || r.Hits == 0 {
		t.Fatalf("cache not exercised: %+v", r)
	}
	if r.Hits < r.Misses {
		t.Fatalf("warm passes should be hit-dominated: %+v", r)
	}
}
