package bench

import (
	"fmt"
	"time"

	"m2cc/internal/core"
	"m2cc/internal/ifacecache"
	"m2cc/internal/source"
	"m2cc/internal/workload"
)

// CacheBenchResult quantifies the interface cache on its target
// workload: a batch of modules sharing one layered interface library,
// compiled cold (no cache — every compilation re-analyzes its
// transitive interfaces, as the paper's compiler does) versus warm (one
// cache shared across the batch).  Field tags match
// BENCH_ifacecache.json.
type CacheBenchResult struct {
	Benchmark string  `json:"benchmark"`
	Profile   string  `json:"profile"` // what the batch looks like
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	Workers   int     `json:"workers"`
	Runs      int     `json:"runs"`
	Programs  int     `json:"programs"`
	ColdMs    float64 `json:"cold_ms"`
	WarmMs    float64 `json:"warm_ms"`
	Speedup   float64 `json:"speedup"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Waits     int64   `json:"waits"`
	Bypasses  int64   `json:"bypasses"`
}

func (r CacheBenchResult) String() string {
	return fmt.Sprintf(
		"Interface cache benchmark (%s; seed %d, %d programs, workers=%d, best of %d):\n"+
			"  cold (no cache):     %8.1f ms\n"+
			"  warm (shared cache): %8.1f ms\n"+
			"  speedup:             %8.2fx\n"+
			"  cache: %d hits, %d misses, %d waits, %d bypasses\n",
		r.Profile, r.Seed, r.Programs, r.Workers, r.Runs,
		r.ColdMs, r.WarmMs, r.Speedup, r.Hits, r.Misses, r.Waits, r.Bypasses)
}

// CacheBenchPrograms is the batch size of the cache benchmark.
const CacheBenchPrograms = 32

// CacheBench measures cold-vs-warm batch compilation.  The batch models
// the environment the paper describes — a large shared Modula-2+
// interface library under active development — at the proportions where
// interface re-analysis is the bottleneck: CacheBenchPrograms small
// client modules, each importing a deep slice (~90 interfaces, depth
// ~11) of the generated 144-module library.  Cold passes run uncached;
// warm passes share one cache primed by a single unmeasured pass.  Both
// sides take the best of runs repetitions to damp scheduler noise.
func CacheBench(cfg Config, runs, workers int) (CacheBenchResult, error) {
	cfg = cfg.withDefaults()
	if runs < 1 {
		runs = 1
	}
	if workers < 1 {
		workers = 1
	}
	loader := source.NewMapLoader()
	lib := workload.GenerateLibrary(cfg.Seed, loader)
	var programs []workload.ProgramInfo
	for i := 0; i < CacheBenchPrograms; i++ {
		programs = append(programs, workload.GenerateProgram(workload.ProgramSpec{
			Name:          fmt.Sprintf("Client%02d", i),
			Seed:          cfg.Seed + int64(1000+i),
			Procs:         3,
			StmtReps:      1,
			TargetImports: 90,
			TargetDepth:   11,
			NestedEvery:   0,
			CallsForward:  true,
		}, lib, loader))
	}

	pass := func(cache *ifacecache.Cache) (time.Duration, error) {
		start := time.Now()
		for _, p := range programs {
			res := core.Compile(p.Name, loader, core.Options{
				Workers: workers, Cache: cache,
			})
			if res.Failed() {
				return 0, fmt.Errorf("%s failed to compile:\n%s", p.Name, res.Diags)
			}
		}
		return time.Since(start), nil
	}

	best := func(cache *ifacecache.Cache) (time.Duration, error) {
		lo := time.Duration(1 << 62)
		for r := 0; r < runs; r++ {
			d, err := pass(cache)
			if err != nil {
				return 0, err
			}
			if d < lo {
				lo = d
			}
		}
		return lo, nil
	}

	cold, err := best(nil)
	if err != nil {
		return CacheBenchResult{}, err
	}

	cache := ifacecache.New()
	if _, err := pass(cache); err != nil { // priming pass, not measured
		return CacheBenchResult{}, err
	}
	warm, err := best(cache)
	if err != nil {
		return CacheBenchResult{}, err
	}

	s := cache.Stats()
	return CacheBenchResult{
		Benchmark: "ifacecache",
		Profile:   fmt.Sprintf("%d small clients of the %d-module interface library", CacheBenchPrograms, workload.LibLayers*workload.LibPerLayer),
		Seed:      cfg.Seed,
		Scale:     cfg.Scale,
		Workers:   workers,
		Runs:      runs,
		Programs:  len(programs),
		ColdMs:    float64(cold.Microseconds()) / 1000,
		WarmMs:    float64(warm.Microseconds()) / 1000,
		Speedup:   float64(cold) / float64(warm),
		Hits:      s.Hits,
		Misses:    s.Misses,
		Waits:     s.Waits,
		Bypasses:  s.Bypasses,
	}, nil
}
