// Package m2cc is a concurrent compiler for Modula-2+, a Go
// reproduction of Wortman & Junkin, "A Concurrent Compiler for
// Modula-2+" (PLDI 1992).
//
// The compiler splits a source program into separately compilable
// streams — the main module body, one stream per procedure, one per
// directly or indirectly imported definition module — and compiles the
// streams concurrently under a Supervisor scheduler with avoided,
// handled and barrier events.  Symbol tables are per-scope and may be
// searched while still under construction; the Doesn't Know Yet
// condition that results is handled by one of four strategies
// (Avoidance, Pessimistic, Skeptical, Optimistic).  Per-procedure code
// segments are merged by concatenation into an object file, and a small
// linker turns a set of objects into a runnable program for the
// package's abstract stack machine.
//
// # Quick start
//
//	loader := m2cc.NewMapLoader()
//	loader.Add("Hello", m2cc.Impl, `
//	MODULE Hello;
//	BEGIN WriteString("hello"); WriteLn END Hello.`)
//
//	res := m2cc.Compile("Hello", loader, m2cc.Options{Workers: 8})
//	if res.Failed() {
//	    fmt.Print(res.Diags)
//	}
//	prog, _ := m2cc.BuildProgram("Hello", loader, m2cc.Options{Workers: 8})
//	m2cc.Execute(prog, os.Stdin, os.Stdout)
//
// # Reproduction artifacts
//
// The workload generator (internal/workload), trace recorder
// (internal/ctrace), Firefly-substitute simulator (internal/sim) and
// experiment harness (internal/bench) regenerate every table and
// figure of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md,
// and the cmd/m2bench tool.
package m2cc

import (
	"fmt"
	"io"
	"sync"

	"m2cc/internal/check"
	"m2cc/internal/core"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/ifacecache"
	"m2cc/internal/obs"
	"m2cc/internal/profile"
	"m2cc/internal/seq"
	"m2cc/internal/sim"
	"m2cc/internal/source"
	"m2cc/internal/streamcache"
	"m2cc/internal/symtab"
	"m2cc/internal/vm"
)

// Strategy selects DKY handling (§2.2 of the paper).
type Strategy = symtab.Strategy

// The four DKY strategies, ordered as in the paper.
const (
	Avoidance   = symtab.Avoidance
	Pessimistic = symtab.Pessimistic
	Skeptical   = symtab.Skeptical // the paper's recommendation (Figure 6)
	Optimistic  = symtab.Optimistic
)

// ParseStrategy converts a strategy name to a Strategy.
func ParseStrategy(name string) (Strategy, error) { return symtab.ParseStrategy(name) }

// HeaderMode selects §2.4 procedure-heading sharing.
type HeaderMode = core.HeaderMode

// Heading-sharing alternatives.
const (
	HeaderShared    = core.HeaderShared    // alternative 1 (the paper's choice)
	HeaderReprocess = core.HeaderReprocess // alternative 3 (~3% slower)
)

// FileKind distinguishes definition (.def) from implementation (.mod)
// files.
type FileKind = source.FileKind

// File kinds.
const (
	Def  = source.Def
	Impl = source.Impl
)

// Loader resolves module names to source text.
type Loader = source.Loader

// MapLoader is an in-memory Loader.
type MapLoader = source.MapLoader

// NewMapLoader returns an empty in-memory loader.
func NewMapLoader() *MapLoader { return source.NewMapLoader() }

// DirLoader loads modules from directories.
type DirLoader = source.DirLoader

// Options configure a concurrent compilation.
type Options = core.Options

// DefaultStallTimeout bounds waits on foreign interface-cache leaders
// when Options.StallTimeout is zero; see core.DefaultStallTimeout.
const DefaultStallTimeout = core.DefaultStallTimeout

// Result is a concurrent compilation's outcome.
type Result = core.Result

// Finding is one static-analysis finding (a warning-severity
// diagnostic with a line+column span).  Produced by Options.Check
// (Result.Findings) and by Lint.
type Finding = diag.Diagnostic

// RenderFindings formats findings one per line, the byte-comparable
// form the differential tests use.
func RenderFindings(findings []Finding) string { return check.Render(findings) }

// WriteFindingsJSON emits findings as a JSON array with full spans.
func WriteFindingsJSON(w io.Writer, findings []Finding) error {
	return check.WriteJSON(w, findings)
}

// FindingCodes lists every finding-family code the analyzer can emit
// (diag.Diagnostic.Code), in documentation order; m2lint validates its
// -enable/-disable filters against it.
func FindingCodes() []string { return check.FindingCodes() }

// SeqResult is a sequential compilation's outcome.
type SeqResult = seq.Result

// Object is a compiled module (symbolic cross-references, linked by
// Link).
type Object = vm.Object

// Program is a linked, runnable image.
type Program = vm.Program

// Trace is a schedule-independent compilation trace for the simulator.
type Trace = ctrace.Trace

// SimOptions configure a Firefly-substitute simulation.
type SimOptions = sim.Options

// SimResult is a simulation outcome.
type SimResult = sim.Result

// Stats are Table 2 identifier-lookup statistics.
type Stats = symtab.Stats

// Cache is a shared interface-compilation cache.  One Cache may serve
// any number of concurrent and sequential compilations: completed
// definition-module scopes are keyed by the content hash of their
// transitive .def closure, and concurrent requests for the same
// uncached interface are single-flighted — one compilation leads, the
// rest wait on its completion event.  Output is byte-identical with or
// without a cache.
type Cache = ifacecache.Cache

// CacheStats is a snapshot of a Cache's hit/miss/wait/bypass counters.
type CacheStats = ifacecache.Stats

// NewCache returns an empty shared interface cache.
func NewCache() *Cache { return ifacecache.New() }

// StreamCache is a shared incremental-recompilation cache at the
// paper's stream granularity: each procedure stream (and module body)
// is keyed by a content hash of its token layout, its enclosing
// declarations and the compilation's interface closure; a recompile
// after a one-procedure edit re-runs only the changed streams and
// replays the rest — object code, diagnostics and lint facts — from the
// cache.  Attach one via Options.StreamCache; output is byte-identical
// to a cold build.  One StreamCache may serve any number of
// compilations (the m2cd daemon shares one per process).
type StreamCache = streamcache.Cache

// StreamCacheStats is a snapshot of a StreamCache's cumulative
// hit/miss/eviction counters.
type StreamCacheStats = streamcache.Stats

// StreamTally is one compilation's stream-cache traffic
// (Result.StreamCache).
type StreamTally = streamcache.Tally

// NewStreamCache returns an empty stream cache capped at limit entries
// (0 = unbounded) with LRU eviction.
func NewStreamCache(limit int) *StreamCache { return streamcache.New(limit) }

// Observer is the live-observability layer: attach one via
// Options.Obs to record wall-clock spans for every Supervisor task and
// aggregate worker-occupancy, ready-queue, event and cache metrics.
// One Observer may span a whole CompileBatch.  Export with
// WriteChromeTrace (Perfetto-loadable), WriteMetrics (JSON) or
// RenderTimeline (Figure 7-style ASCII); see internal/obs.
type Observer = obs.Observer

// ObsMetrics is an Observer's aggregated metrics snapshot.
type ObsMetrics = obs.Metrics

// NewObserver returns an Observer ready to attach to Options.Obs.
// The zero epoch is the moment of creation.
func NewObserver() *Observer { return obs.New() }

// Profile is a measured critical-path profile: the dependency-DAG walk
// over one observed run, with blocked time attributed per event and
// the serial fraction / P→∞ speedup bound derived; see
// internal/profile.
type Profile = profile.Profile

// BuildProfile computes the critical-path profile of the run(s)
// recorded by o: reconstructs the task/event dependency DAG from the
// observed spans and fire/wait edges, walks the critical path, and
// attributes every unit of blocked time to the event that caused it.
// Render the result with Profile.Render or Profile.WriteJSON.
func BuildProfile(o *Observer) *Profile {
	d := o.Dump()
	return profile.Build(&d)
}

// ExportObservedTrace converts the run recorded by o into a
// schedule-independent Trace replayable by Simulate — the "what-if"
// bridge: re-run the actual measured compilation at any processor
// count or DKY strategy without recompiling.  One trace work unit is
// one microsecond of measured execution; pass SimOptions.ReplayWaits
// so the simulator honours the measured handled-wait edges.
func ExportObservedTrace(o *Observer) *Trace {
	d := o.Dump()
	return profile.ExportTrace(&d)
}

// Compile runs the concurrent compiler on the named implementation
// module.  Set Options.Cache to share interface compilations across
// calls.
//
// Compile never lets a wounded concurrent compilation reach the
// caller: if the attempt faulted (a stream task panicked and was
// isolated, or the deadlock watchdog had to force-fire events), the
// module is transparently re-run through the always-correct sequential
// compiler, so the result is either a correct object program or
// ordinary source diagnostics — never a crash and never a poisoned
// object.  Such results carry Faulted and FellBack set.
//
// Set Options.Cancel (a context's Done channel) to abandon the
// compilation early: the result comes back promptly with Canceled set
// and must be discarded — canceled compilations take no fallback.
func Compile(module string, loader Loader, opts Options) *Result {
	res := core.Compile(module, loader, opts)
	if res.Canceled {
		// An abandoned request (Options.Cancel fired): no sequential
		// fallback and no lint recomputation — the caller asked the
		// compilation to stop, not to produce an answer.  The partial
		// result must be discarded.
		return res
	}
	if res.Faulted {
		fb := sequentialFallback(module, loader, res)
		if opts.Check {
			// The faulted attempt's findings (if any) came from a
			// wounded schedule; recompute them with the sequential
			// analyzer, which parses afresh from source.
			fb.Findings = check.Analyze(module, loader)
			fb.CheckFellBack = true
		}
		return fb
	}
	if opts.Check && res.Findings == nil {
		// The lint merge never ran (its task was lost to a shutdown
		// path that did not poison the result); degrade to the
		// sequential analyzer rather than report nothing.
		res.Findings = check.Analyze(module, loader)
		res.CheckFellBack = true
	}
	return res
}

// Lint runs the sequential static analyzer over the named module and
// its interface closure without compiling it — the baseline the
// concurrent checker (Options.Check) byte-matches.
func Lint(module string, loader Loader) []Finding {
	return check.Analyze(module, loader)
}

// sequentialFallback re-runs a faulted concurrent compilation through
// seq.Compile.  The fallback deliberately runs without a cache: a
// fault may have interrupted cache publication mid-flight, and the
// sequential path's independence is the point.  Stats and Trace are
// dropped — measurements of a poisoned schedule would be lies — while
// Streams keeps the concurrent attempt's count for reporting.
func sequentialFallback(module string, loader Loader, faulted *Result) *Result {
	sres := seq.Compile(module, loader)
	return &Result{
		Object:   sres.Object,
		Diags:    sres.Diags,
		Files:    sres.Files,
		Streams:  faulted.Streams,
		Faulted:  true,
		FellBack: true,
	}
}

// CompileSequential runs the traditional sequential compiler (the
// paper's baseline); its output is byte-identical to Compile's.
func CompileSequential(module string, loader Loader) *SeqResult {
	return seq.Compile(module, loader)
}

// CompileSequentialCached runs the sequential compiler against a shared
// interface cache (nil behaves exactly like CompileSequential).
func CompileSequentialCached(module string, loader Loader, cache *Cache) *SeqResult {
	return seq.CompileWithCache(module, loader, cache)
}

// CompileBatch compiles several implementation modules concurrently,
// sharing one interface cache so each definition module in the batch is
// compiled exactly once.  If opts.Cache is nil a fresh cache is used
// for the batch; pass an existing cache to warm-start.  Results are
// returned in input order.  Faulted compilations fall back to the
// sequential compiler individually (see Compile); one wounded module
// never poisons its batch siblings.
func CompileBatch(modules []string, loader Loader, opts Options) []*Result {
	if opts.Cache == nil {
		opts.Cache = NewCache()
	}
	results := make([]*Result, len(modules))
	var wg sync.WaitGroup
	for i, mod := range modules {
		wg.Add(1)
		go func(i int, mod string) {
			defer wg.Done()
			results[i] = Compile(mod, loader, opts)
		}(i, mod)
	}
	wg.Wait()
	return results
}

// Link resolves symbolic references across objects into a runnable
// Program whose main module is named.
func Link(objects []*Object, main string) (*Program, error) {
	return vm.Link(objects, main)
}

// BuildProgram compiles the main module and every transitively imported
// module that has an implementation — each with the concurrent compiler
// — and links the results.
func BuildProgram(main string, loader Loader, opts Options) (*Program, error) {
	var objects []*Object
	seen := map[string]bool{}
	queue := []string{main}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		if _, err := loader.Load(name, Impl); err != nil {
			if name == main {
				return nil, fmt.Errorf("main module %s has no implementation", main)
			}
			continue // interface-only module
		}
		res := Compile(name, loader, opts)
		if res.Failed() {
			return nil, fmt.Errorf("compilation of %s failed:\n%s", name, res.Diags)
		}
		objects = append(objects, res.Object)
		queue = append(queue, res.Object.Imports...)
	}
	return Link(objects, main)
}

// Execute runs a linked program on the abstract machine.
func Execute(prog *Program, stdin io.Reader, stdout io.Writer) error {
	return vm.NewMachine(prog, stdin, stdout).Run()
}

// Simulate replays a compilation trace on a simulated multiprocessor
// under the Supervisor scheduling policy.  Collect traces with
// Options{Workers: 1, Trace: true} for deterministic replays.
func Simulate(trace *Trace, opts SimOptions) *SimResult {
	return sim.New(trace, opts).Run()
}
