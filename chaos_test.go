package m2cc_test

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"m2cc"
	"m2cc/internal/faultinject"
)

// chaosProgram is the fault-injection fixture: three modules with
// enough procedures, imports and lookups that every injection point
// has arrivals — procedure headings for DropFire, definition-module
// compilations for StallLeader/FailInstall, and plenty of symbol
// lookups for PanicLookup.
var chaosProgram = map[string]string{
	"Buffers.def": `
DEFINITION MODULE Buffers;
CONST Cap = 8;
TYPE Buffer;
EXCEPTION Full;
PROCEDURE New(): Buffer;
PROCEDURE Put(b: Buffer; v: INTEGER);
PROCEDURE Take(b: Buffer): INTEGER;
PROCEDURE Count(b: Buffer): INTEGER;
END Buffers.
`,
	"Buffers.mod": `
IMPLEMENTATION MODULE Buffers;
TYPE
  Rep = RECORD
    n: INTEGER;
    a: ARRAY [0..Cap-1] OF INTEGER
  END;
  Buffer = POINTER TO Rep;

PROCEDURE New(): Buffer;
VAR b: Buffer;
BEGIN
  NEW(b);
  b^.n := 0;
  RETURN b
END New;

PROCEDURE Put(b: Buffer; v: INTEGER);
BEGIN
  IF b^.n >= Cap THEN RAISE Full END;
  b^.a[b^.n] := v;
  INC(b^.n)
END Put;

PROCEDURE Take(b: Buffer): INTEGER;
BEGIN
  DEC(b^.n);
  RETURN b^.a[b^.n]
END Take;

PROCEDURE Count(b: Buffer): INTEGER;
BEGIN
  RETURN b^.n
END Count;

END Buffers.
`,
	"Stats.def": `
DEFINITION MODULE Stats;
PROCEDURE Mean3(a, b, c: INTEGER): INTEGER;
END Stats.
`,
	"Stats.mod": `
IMPLEMENTATION MODULE Stats;

PROCEDURE Mean3(a, b, c: INTEGER): INTEGER;
BEGIN
  RETURN (a + b + c) DIV 3
END Mean3;

END Stats.
`,
	"Main.mod": `
MODULE Main;
FROM Buffers IMPORT Put, Take, Count;
IMPORT Buffers, Stats;
VAR b: Buffers.Buffer; v: INTEGER;

PROCEDURE Fill(n: INTEGER);
VAR k: INTEGER;
BEGIN
  FOR k := 1 TO n DO Put(b, (k * 7) MOD 5) END
END Fill;

PROCEDURE Drain(): INTEGER;
VAR sum: INTEGER;
BEGIN
  sum := 0;
  WHILE Count(b) > 0 DO sum := sum + Take(b) END;
  RETURN sum
END Drain;

BEGIN
  b := Buffers.New();
  Fill(6);
  v := Drain();
  WriteInt(v, 0); WriteLn;
  WriteInt(Stats.Mean3(1, 2, 9), 0); WriteLn
END Main.
`,
}

func chaosLoader() *m2cc.MapLoader {
	loader := m2cc.NewMapLoader()
	for name, text := range chaosProgram {
		if base, ok := strings.CutSuffix(name, ".def"); ok {
			loader.Add(base, m2cc.Def, text)
		} else if base, ok := strings.CutSuffix(name, ".mod"); ok {
			loader.Add(base, m2cc.Impl, text)
		}
	}
	return loader
}

// chaosBaseline runs the always-correct sequential compiler and fails
// the test if the fixture itself does not compile cleanly.
func chaosBaseline(t *testing.T, loader m2cc.Loader, module string) (listing, diags string) {
	t.Helper()
	sres := m2cc.CompileSequential(module, loader)
	if sres.Failed() {
		t.Fatalf("chaos fixture %s must compile cleanly:\n%s", module, sres.Diags)
	}
	return sres.Object.Listing(), sres.Diags.String()
}

// chaosSeeds returns the seed list for the seeded matrix: CHAOS_SEEDS
// (comma-separated integers) if set, else a fixed default.
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// runChaos compiles module under plan and asserts the differential
// property: whatever the fault did, m2cc.Compile's output and
// diagnostics are byte-identical to the sequential compiler's.
// wantTrip asserts the exact number of points that fired; pass -1 for
// seeded plans, whose arrival index may legitimately exceed the number
// of arrivals (the equality must hold either way).
func runChaos(t *testing.T, loader m2cc.Loader, module string, strat m2cc.Strategy, plan *faultinject.Plan, wantTrip int) {
	t.Helper()
	wantListing, wantDiags := chaosBaseline(t, loader, module)

	opts := m2cc.Options{Workers: 4, Strategy: strat, FaultPlan: plan}

	// PanicCheck kills a static-analysis task and PanicConcMerge kills
	// the merge barrier's interprocedural fixed point, so they only have
	// arrivals when lint streams run.  Check disables the interface
	// cache, which would starve the cache points of arrivals, so it is
	// enabled only for plans that arm one of them.
	if plan.Trigger(faultinject.PanicCheck) > 0 || plan.Trigger(faultinject.PanicConcMerge) > 0 {
		opts.Check = true
	}

	// FailInstall vetoes a cache-closure install, which only happens on
	// a cache hit: warm a cache first so the point has arrivals.
	if plan.Trigger(faultinject.FailInstall) > 0 {
		cache := m2cc.NewCache()
		warm := m2cc.Compile(module, loader, m2cc.Options{Workers: 4, Strategy: strat, Cache: cache})
		if warm.Failed() || warm.Faulted {
			t.Fatalf("cache warm-up failed:\n%s", warm.Diags)
		}
		opts.Cache = cache
	}

	// PanicInstall crashes a cached-stream install task, which only
	// runs on a stream-cache hit: warm a stream cache first so the
	// point has arrivals.
	if plan.Trigger(faultinject.PanicInstall) > 0 {
		scache := m2cc.NewStreamCache(0)
		warm := m2cc.Compile(module, loader, m2cc.Options{Workers: 4, Strategy: strat, StreamCache: scache, Check: opts.Check})
		if warm.Failed() || warm.Faulted {
			t.Fatalf("stream-cache warm-up failed:\n%s", warm.Diags)
		}
		opts.StreamCache = scache
	}

	// StallLeader wedges a leader publishing into a shared cache; give
	// the session a cache to lead so the point has arrivals.
	if plan.Trigger(faultinject.StallLeader) > 0 && opts.Cache == nil {
		opts.Cache = m2cc.NewCache()
	}

	// A tripped StallLeader wedges this session's own leader until
	// Release; un-wedge it as soon as it stalls so the run terminates.
	// (The two-session timeout path has its own test below.)
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		select {
		case <-plan.Stalled():
			plan.Release()
		case <-stop:
		}
	}()

	res := m2cc.Compile(module, loader, opts)
	if res.Failed() {
		t.Fatalf("chaos compile failed:\n%s", res.Diags)
	}
	if wantTrip >= 0 {
		tripped := int64(0)
		for _, pt := range faultinject.Points() {
			tripped += plan.Tripped(pt)
		}
		if tripped != int64(wantTrip) {
			t.Fatalf("fault tripped %d times, want %d", tripped, wantTrip)
		}
	}
	if res.FellBack && !res.Faulted {
		t.Fatal("FellBack implies Faulted")
	}
	if got := res.Object.Listing(); got != wantListing {
		t.Fatalf("listing diverges from sequential baseline\ngot:\n%s\nwant:\n%s", got, wantListing)
	}
	if got := res.Diags.String(); got != wantDiags {
		t.Fatalf("diagnostics diverge from sequential baseline\ngot:\n%s\nwant:\n%s", got, wantDiags)
	}
	if opts.Check {
		// A crashed lint stream must degrade to the sequential
		// analyzer without losing or corrupting sibling findings.
		if res.Faulted {
			t.Fatal("a lint fault poisoned the compilation")
		}
		if plan.Tripped(faultinject.PanicCheck) > 0 && !res.CheckFellBack {
			t.Fatal("tripped PanicCheck but CheckFellBack not set")
		}
		if plan.Tripped(faultinject.PanicConcMerge) > 0 && !res.CheckFellBack {
			t.Fatal("tripped PanicConcMerge but CheckFellBack not set")
		}
		want := m2cc.RenderFindings(m2cc.Lint(module, loader))
		if got := m2cc.RenderFindings(res.Findings); got != want {
			t.Fatalf("findings diverge from sequential analyzer\ngot:\n%s\nwant:\n%s", got, want)
		}
	}
}

// TestChaosMatrix hand-arms every injection point under every DKY
// strategy, guaranteeing each fault kind is exercised regardless of
// how the seeded plans happen to land.
func TestChaosMatrix(t *testing.T) {
	loader := chaosLoader()
	plans := []struct {
		name string
		arm  func() *faultinject.Plan
	}{
		{"panic-lookup", func() *faultinject.Plan {
			return faultinject.New().Arm(faultinject.PanicLookup, 5)
		}},
		{"drop-fire", func() *faultinject.Plan {
			return faultinject.New().Arm(faultinject.DropFire, 1)
		}},
		{"fail-install", func() *faultinject.Plan {
			return faultinject.New().Arm(faultinject.FailInstall, 1)
		}},
		{"stall-leader", func() *faultinject.Plan {
			return faultinject.New().Arm(faultinject.StallLeader, 1)
		}},
		{"panic-check", func() *faultinject.Plan {
			return faultinject.New().Arm(faultinject.PanicCheck, 3)
		}},
		{"panic-conc-merge", func() *faultinject.Plan {
			// Kills the merge barrier's interprocedural lockset fixed
			// point mid-flight: the checker must discard the concurrent
			// fact tables and self-recover via the sequential analyzer
			// (CheckFellBack) with byte-identical findings.
			return faultinject.New().Arm(faultinject.PanicConcMerge, 1)
		}},
		{"panic-install", func() *faultinject.Plan {
			// Crashes a warm stream-cache install mid-flight: the
			// half-installed compilation must fault and recover through
			// the sequential fallback, byte-identical.
			return faultinject.New().Arm(faultinject.PanicInstall, 1)
		}},
		{"panic-steal", func() *faultinject.Plan {
			// Trips the first task dispatched by stealing it from
			// another worker's local run queue, before its body runs;
			// recovery must be indistinguishable from any other panic.
			return faultinject.New().Arm(faultinject.PanicSteal, 1)
		}},
	}
	for strat := m2cc.Avoidance; strat <= m2cc.Optimistic; strat++ {
		for _, p := range plans {
			t.Run(strat.String()+"/"+p.name, func(t *testing.T) {
				runChaos(t, loader, "Main", strat, p.arm(), 1)
			})
		}
	}
}

// TestChaosSeeded runs seed-derived plans (CHAOS_SEEDS overrides the
// default list) under every DKY strategy.
func TestChaosSeeded(t *testing.T) {
	loader := chaosLoader()
	for _, seed := range chaosSeeds(t) {
		for strat := m2cc.Avoidance; strat <= m2cc.Optimistic; strat++ {
			t.Run("seed"+strconv.FormatInt(seed, 10)+"/"+strat.String(), func(t *testing.T) {
				runChaos(t, loader, "Main", strat, faultinject.FromSeed(seed), -1)
			})
		}
	}
}

// TestChaosStalledLeaderTimeout wedges an interface-cache leader in
// one session and checks — through the public API — that a second
// session sharing the cache times out on the foreign leader, compiles
// the interface itself, and still matches the sequential baseline.
func TestChaosStalledLeaderTimeout(t *testing.T) {
	loader := chaosLoader()
	wantListing, _ := chaosBaseline(t, loader, "Main")
	cache := m2cc.NewCache()
	plan := faultinject.New().Arm(faultinject.StallLeader, 1)

	leaderDone := make(chan *m2cc.Result, 1)
	go func() {
		leaderDone <- m2cc.Compile("Main", loader, m2cc.Options{
			Workers: 4, Cache: cache, FaultPlan: plan,
		})
	}()
	select {
	case <-plan.Stalled():
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the stall point")
	}

	waiter := m2cc.Compile("Main", loader, m2cc.Options{
		Workers: 4, Cache: cache, StallTimeout: 20 * time.Millisecond,
	})
	if waiter.Failed() || waiter.Faulted {
		t.Fatalf("waiter must abandon the stalled leader and succeed:\n%s", waiter.Diags)
	}
	if got := waiter.Object.Listing(); got != wantListing {
		t.Fatalf("waiter listing diverges\ngot:\n%s\nwant:\n%s", got, wantListing)
	}

	plan.Release()
	leader := <-leaderDone
	if leader.Failed() || leader.Faulted {
		t.Fatalf("released leader must finish cleanly:\n%s", leader.Diags)
	}
	if got := leader.Object.Listing(); got != wantListing {
		t.Fatalf("leader listing diverges\ngot:\n%s\nwant:\n%s", got, wantListing)
	}
}

// TestChaosBatchFaultIsolation injects a panic into a batch
// compilation: exactly the wounded module falls back, its siblings are
// untouched, and every result matches its sequential baseline.
func TestChaosBatchFaultIsolation(t *testing.T) {
	loader := chaosLoader()
	mods := []string{"Main", "Buffers", "Stats"}
	want := make(map[string]string, len(mods))
	for _, m := range mods {
		want[m], _ = chaosBaseline(t, loader, m)
	}

	plan := faultinject.New().Arm(faultinject.PanicLookup, 5)
	results := m2cc.CompileBatch(mods, loader, m2cc.Options{
		Workers: 4, FaultPlan: plan,
	})
	if plan.Tripped(faultinject.PanicLookup) != 1 {
		t.Fatalf("fault tripped %d times, want 1", plan.Tripped(faultinject.PanicLookup))
	}
	fellBack := 0
	for i, res := range results {
		if res.Failed() {
			t.Fatalf("%s failed:\n%s", mods[i], res.Diags)
		}
		if res.FellBack {
			fellBack++
		}
		if got := res.Object.Listing(); got != want[mods[i]] {
			t.Fatalf("%s diverges from sequential baseline\ngot:\n%s\nwant:\n%s", mods[i], got, want[mods[i]])
		}
	}
	if fellBack != 1 {
		t.Fatalf("%d modules fell back, want exactly the wounded one", fellBack)
	}
}
