package m2cc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"m2cc"
)

// incrSources reads the examples/modules edit-replay fixture: Demo
// imports Fib; Shapes is independent of both.
func incrSources(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, name := range []string{"Demo.mod", "Fib.def", "Fib.mod", "Shapes.def", "Shapes.mod"} {
		b, err := os.ReadFile(filepath.Join("examples", "modules", name))
		if err != nil {
			t.Fatalf("fixture: %v", err)
		}
		out[name] = string(b)
	}
	return out
}

func incrLoader(t *testing.T, sources map[string]string) *m2cc.MapLoader {
	t.Helper()
	loader := m2cc.NewMapLoader()
	for name, text := range sources {
		if base, ok := strings.CutSuffix(name, ".def"); ok {
			loader.Add(base, m2cc.Def, text)
		} else if base, ok := strings.CutSuffix(name, ".mod"); ok {
			loader.Add(base, m2cc.Impl, text)
		}
	}
	return loader
}

// editedOnce clones sources and applies one substitution, failing
// loudly if the fixture drifted and the substring is gone.
func editedOnce(t *testing.T, sources map[string]string, file, old, new string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(sources))
	for k, v := range sources {
		out[k] = v
	}
	if !strings.Contains(out[file], old) {
		t.Fatalf("fixture drift: %q not found in %s", old, file)
	}
	out[file] = strings.Replace(out[file], old, new, 1)
	return out
}

// TestEditReplayExamples drives the ISSUE's scripted edit sequence over
// examples/modules/ through the public API: every warm rebuild must be
// byte-identical to a cold build of the same text, with the expected
// per-module cache traffic.  (Fib.mod and Shapes.mod have no BEGIN
// body, so their always-probed body key is a permanent miss; the hit
// expectations below account for that.)
func TestEditReplayExamples(t *testing.T) {
	base := incrSources(t)
	mods := []string{"Demo", "Fib", "Shapes"}
	type traffic struct{ probed, hits int }
	steps := []struct {
		name    string
		sources map[string]string
		want    map[string]traffic
	}{
		{"noop", base, map[string]traffic{
			"Demo": {1, 1}, "Fib": {2, 1}, "Shapes": {4, 3},
		}},
		// A line-preserving edit inside Fib.Nth: Fib recompiles (the
		// body key covers the whole file), Demo and Shapes stay warm.
		{"edit-proc", editedOnce(t, base, "Fib.mod",
			"RETURN Nth(n-1) + Nth(n-2)", "RETURN Nth(n-2) + Nth(n-1)"),
			map[string]traffic{
				"Demo": {1, 1}, "Fib": {2, 0}, "Shapes": {4, 3},
			}},
		// A .def edit changes the interface closure of everything that
		// imports Fib — including Fib's own implementation — but leaves
		// Shapes warm.
		{"edit-def", editedOnce(t, base, "Fib.def",
			"PROCEDURE Nth(n: INTEGER): INTEGER;", "PROCEDURE Nth(m: INTEGER): INTEGER;"),
			map[string]traffic{
				"Demo": {1, 0}, "Fib": {2, 0}, "Shapes": {4, 3},
			}},
		// Reverting restores the original keys, recorded by the seed.
		{"revert", base, map[string]traffic{
			"Demo": {1, 1}, "Fib": {2, 1}, "Shapes": {4, 3},
		}},
	}

	cache := m2cc.NewStreamCache(0)
	// Seed the cache with the unedited program.
	for _, m := range mods {
		res := m2cc.Compile(m, incrLoader(t, base), m2cc.Options{Workers: 4, StreamCache: cache})
		if res.Failed() {
			t.Fatalf("seed %s failed:\n%s", m, res.Diags)
		}
	}
	for _, step := range steps {
		loader := incrLoader(t, step.sources)
		for _, m := range mods {
			warm := m2cc.Compile(m, loader, m2cc.Options{Workers: 4, StreamCache: cache})
			cold := m2cc.Compile(m, loader, m2cc.Options{Workers: 4})
			if warm.Failed() || cold.Failed() {
				t.Fatalf("%s/%s: compile failed\nwarm: %s\ncold: %s", step.name, m, warm.Diags, cold.Diags)
			}
			if g, w := warm.Object.Listing(), cold.Object.Listing(); g != w {
				t.Fatalf("%s/%s: warm listing differs from cold\ngot:\n%s\nwant:\n%s", step.name, m, g, w)
			}
			if g, w := warm.Diags.String(), cold.Diags.String(); g != w {
				t.Fatalf("%s/%s: warm diagnostics differ from cold\ngot: %q\nwant: %q", step.name, m, g, w)
			}
			ta := warm.StreamCache
			if ta == nil {
				t.Fatalf("%s/%s: no stream-cache tally", step.name, m)
			}
			want := step.want[m]
			if ta.Probed != want.probed || ta.Hits != want.hits {
				t.Fatalf("%s/%s: probed=%d hits=%d, want probed=%d hits=%d (tally %+v)",
					step.name, m, ta.Probed, ta.Hits, want.probed, want.hits, *ta)
			}
		}
	}
}
