// Command tracecheck validates a Chrome trace-event JSON file written
// by `m2c -trace` (or any internal/obs export): the file must parse,
// declare traceEvents, and contain at least one complete ("X") span
// with a name — the minimum for Perfetto to show something useful.
// Used by `make smoke` and CI; exits non-zero with a diagnostic on any
// violation.
//
//	tracecheck out.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
	} `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fmt.Fprintf(os.Stderr, "%s: not valid trace-event JSON: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "" || ev.Ts < 0 || ev.Dur < 1 {
			fmt.Fprintf(os.Stderr, "%s: malformed span (name=%q ts=%d dur=%d)\n",
				os.Args[1], ev.Name, ev.Ts, ev.Dur)
			os.Exit(1)
		}
		spans++
	}
	if spans == 0 {
		fmt.Fprintf(os.Stderr, "%s: no complete (ph=X) span events\n", os.Args[1])
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d events, %d spans)\n", os.Args[1], len(tf.TraceEvents), spans)
}
