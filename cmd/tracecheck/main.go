// Command tracecheck validates a Chrome trace-event JSON file written
// by `m2c -trace` (or any internal/obs export).  Beyond the basic
// shape — the file must parse, declare traceEvents, and contain at
// least one complete ("X") span with a name — it cross-references the
// dependency edges the exporter embeds as instant events:
//
//   - every "wait" instant whose reason is not "external" must name an
//     event that some "fire" or "force-fire" instant also names (a wait
//     on an event nobody fired is a recording bug or a deadlocked run);
//   - every task ID in span and edge args must lie within the
//     "task_count" metadata record (no dangling task references).
//
// External waits are exempt from the fire check: their producer is a
// foreign compilation's cache leader, outside this observer's run.
// Used by `make smoke`/`make profile` and CI; exits non-zero with a
// diagnostic on any violation.
//
//	tracecheck out.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// intArg reads an integer-valued arg (JSON numbers decode as float64).
func intArg(args map[string]any, key string) (int, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int(f), true
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	file := os.Args[1]
	fail := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "%s: %s\n", file, fmt.Sprintf(format, a...))
		os.Exit(1)
	}

	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// A zero-length file is the signature of a fetch that never wrote a
	// body (curl against a dead daemon, a truncated copy) — name the
	// condition instead of surfacing json's "unexpected end of input".
	if len(data) == 0 {
		fail("empty trace file (0 bytes); the trace was never written or the fetch returned no body")
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("not valid trace-event JSON: %v", err)
	}

	// Pass 1: span shape, task_count metadata, and the set of fired
	// event IDs.
	taskCount := -1 // -1: no metadata record, range checks skipped
	fired := map[int]bool{}
	spans, fires, waits := 0, 0, 0
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "task_count":
			if n, ok := intArg(ev.Args, "count"); ok {
				taskCount = n
			} else {
				fail("task_count metadata without an integer count arg")
			}
		case ev.Ph == "X":
			if ev.Name == "" || ev.Ts < 0 || ev.Dur < 1 {
				fail("malformed span (name=%q ts=%d dur=%d)", ev.Name, ev.Ts, ev.Dur)
			}
			spans++
		case ev.Ph == "i" && ev.Cat == "event" && (ev.Name == "fire" || ev.Name == "force-fire"):
			id, ok := intArg(ev.Args, "event")
			if !ok || id < 1 {
				fail("%s instant without a positive event arg", ev.Name)
			}
			fired[id] = true
			fires++
		}
	}
	if spans == 0 {
		fail("no complete (ph=X) span events")
	}

	// inRange validates a task reference against the metadata count.
	// Task 0 is the driver (allowed where noted); real tasks are 1-based.
	inRange := func(id, low int) bool {
		return taskCount < 0 || (id >= low && id <= taskCount)
	}

	// Pass 2: cross-references.
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "X":
			if id, ok := intArg(ev.Args, "task"); ok && !inRange(id, 1) {
				fail("span %q references task %d outside 1..%d", ev.Name, id, taskCount)
			}
		case ev.Ph == "i" && ev.Cat == "event":
			switch ev.Name {
			case "fire", "force-fire":
				// The driver (task 0) may fire events; tasks are 1-based.
				if id, ok := intArg(ev.Args, "task"); ok && !inRange(id, 0) {
					fail("%s references task %d outside 0..%d", ev.Name, id, taskCount)
				}
			case "wait":
				waits++
				task, ok := intArg(ev.Args, "task")
				if !ok || !inRange(task, 1) {
					fail("wait references task %d outside 1..%d", task, taskCount)
				}
				id, ok := intArg(ev.Args, "event")
				if !ok || id < 1 {
					fail("wait instant without a positive event arg")
				}
				reason, _ := ev.Args["reason"].(string)
				if reason != "external" && !fired[id] {
					fail("task %d waits on event %d (%s) but no fire or force-fire records it",
						task, id, reason)
				}
			}
		}
	}

	fmt.Printf("%s: ok (%d events, %d spans, %d fires, %d waits cross-checked)\n",
		file, len(tf.TraceEvents), spans, fires, waits)
}
