// Command m2lint runs the Modula-2+ static analyzer over one or more
// modules and prints the findings.
//
// Usage:
//
//	m2lint [-I path] [-json] [-seq] [-werror] Module...
//
// By default each module is compiled concurrently with the analysis
// streams enabled (the same supervisor schedule as m2c -lint); -seq
// runs the sequential single-pass analyzer instead — the two are
// byte-identical by construction, which the test suite enforces.
// Findings are warnings: the exit status is 0 unless a module fails to
// compile, or -werror is set and any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"m2cc"
)

func main() {
	var (
		include = flag.String("I", ".", "colon-separated include path for .def/.mod files")
		jsonOut = flag.Bool("json", false, "print findings as a JSON array")
		seqMode = flag.Bool("seq", false, "use the sequential analyzer (no supervisor streams)")
		workers = flag.Int("workers", 8, "worker slots for the concurrent analyzer")
		dky     = flag.String("dky", "skeptical", "DKY strategy: avoidance|pessimistic|skeptical|optimistic")
		werror  = flag.Bool("werror", false, "exit nonzero when any finding is reported")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: m2lint [flags] Module...")
		flag.Usage()
		os.Exit(2)
	}
	strategy, err := m2cc.ParseStrategy(*dky)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader := &m2cc.DirLoader{Dirs: strings.Split(*include, ":")}

	exit := 0
	var all []m2cc.Finding
	for _, module := range flag.Args() {
		var findings []m2cc.Finding
		if *seqMode {
			findings = m2cc.Lint(module, loader)
		} else {
			res := m2cc.Compile(module, loader, m2cc.Options{
				Workers: *workers, Strategy: strategy, Check: true,
			})
			if res.Failed() {
				os.Stderr.WriteString(res.Diags.String())
				exit = 1
				continue
			}
			findings = res.Findings
		}
		if *jsonOut {
			all = append(all, findings...)
		} else {
			fmt.Print(m2cc.RenderFindings(findings))
		}
		if *werror && len(findings) > 0 {
			exit = 1
		}
	}
	if *jsonOut {
		if err := m2cc.WriteFindingsJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}
