// Command m2lint runs the Modula-2+ static analyzer over one or more
// modules and prints the findings.
//
// Usage:
//
//	m2lint [-I path] [-json] [-seq] [-werror] [-enable codes] [-disable codes] Module...
//
// By default each module is compiled concurrently with the analysis
// streams enabled (the same supervisor schedule as m2c -lint); -seq
// runs the sequential single-pass analyzer instead — the two are
// byte-identical by construction, which the test suite enforces.
//
// -enable and -disable take comma-separated finding codes (as printed
// in brackets after each message, e.g. conc-deadlock) and filter the
// report: -enable keeps only the listed families, -disable drops them;
// -disable wins when a code appears in both.  Unknown codes are a
// usage error.  Filtering applies after analysis, so it never changes
// what the analyzer computes — only what is reported and what -werror
// counts.
//
// Exit status:
//
//	0  every module compiled; no findings reported, or -werror unset
//	1  a module failed to compile, or -werror is set and at least one
//	   finding survived the -enable/-disable filters
//	2  usage error (bad flag, unknown strategy or finding code)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"m2cc"
)

// parseCodes splits a comma-separated code list and validates every
// entry against the analyzer's registry.
func parseCodes(list string) (map[string]bool, error) {
	if list == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, c := range m2cc.FindingCodes() {
		known[c] = true
	}
	out := map[string]bool{}
	for _, c := range strings.Split(list, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !known[c] {
			return nil, fmt.Errorf("unknown finding code %q (known: %s)",
				c, strings.Join(m2cc.FindingCodes(), ", "))
		}
		out[c] = true
	}
	return out, nil
}

// filterFindings applies the -enable/-disable sets; -disable wins.
func filterFindings(fs []m2cc.Finding, enable, disable map[string]bool) []m2cc.Finding {
	if enable == nil && disable == nil {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if enable != nil && !enable[f.Code] {
			continue
		}
		if disable[f.Code] {
			continue
		}
		out = append(out, f)
	}
	return out
}

func main() {
	var (
		include = flag.String("I", ".", "colon-separated include path for .def/.mod files")
		jsonOut = flag.Bool("json", false, "print findings as a JSON array")
		seqMode = flag.Bool("seq", false, "use the sequential analyzer (no supervisor streams)")
		workers = flag.Int("workers", 8, "worker slots for the concurrent analyzer")
		dky     = flag.String("dky", "skeptical", "DKY strategy: avoidance|pessimistic|skeptical|optimistic")
		werror  = flag.Bool("werror", false, "exit nonzero when any finding is reported")
		enable  = flag.String("enable", "", "comma-separated finding codes to report exclusively")
		disable = flag.String("disable", "", "comma-separated finding codes to suppress")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: m2lint [flags] Module...")
		flag.Usage()
		os.Exit(2)
	}
	strategy, err := m2cc.ParseStrategy(*dky)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enableSet, err := parseCodes(*enable)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	disableSet, err := parseCodes(*disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader := &m2cc.DirLoader{Dirs: strings.Split(*include, ":")}

	exit := 0
	var all []m2cc.Finding
	for _, module := range flag.Args() {
		var findings []m2cc.Finding
		if *seqMode {
			findings = m2cc.Lint(module, loader)
		} else {
			res := m2cc.Compile(module, loader, m2cc.Options{
				Workers: *workers, Strategy: strategy, Check: true,
			})
			if res.Failed() {
				os.Stderr.WriteString(res.Diags.String())
				exit = 1
				continue
			}
			findings = res.Findings
		}
		findings = filterFindings(findings, enableSet, disableSet)
		if *jsonOut {
			all = append(all, findings...)
		} else {
			fmt.Print(m2cc.RenderFindings(findings))
		}
		if *werror && len(findings) > 0 {
			exit = 1
		}
	}
	if *jsonOut {
		if err := m2cc.WriteFindingsJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}
