// Command m2gen writes the paper's evaluation workload to disk: the
// shared interface library, the 37-program test suite shaped like
// Table 1, and the synthetic best-case module Synth.mod (§4.2).
//
//	m2gen -o testdata             # full-size suite
//	m2gen -o /tmp/small -scale .2 # shrunken bodies, same structure
//	m2gen -list                   # print Table 1 attributes per program
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"m2cc/internal/source"
	"m2cc/internal/workload"
)

func main() {
	var (
		out   = flag.String("o", "", "output directory (omit to only print the summary)")
		seed  = flag.Int64("seed", 1992, "workload seed")
		scale = flag.Float64("scale", 1.0, "program body scale in (0,1]")
		list  = flag.Bool("list", false, "list per-program attributes")
	)
	flag.Parse()

	suite := workload.GenerateSuite(*seed, *scale)
	var synthImports []string
	for i := 0; i < workload.LibPerLayer; i++ {
		synthImports = append(synthImports, fmt.Sprintf("Lib%d", i))
	}
	synth := workload.GenerateSynth(suite.Loader, 128, int(28**scale), synthImports)

	if *list {
		fmt.Printf("%-8s %9s %6s %8s %6s %8s\n", "name", "bytes", "procs", "imports", "depth", "streams")
		for _, p := range suite.Programs {
			fmt.Printf("%-8s %9d %6d %8d %6d %8d\n",
				p.Name, p.Bytes, p.Procedures, p.Imports, p.ImportDepth, p.Streams)
		}
		fmt.Printf("%-8s %9d %6d %8d %6s %8d\n",
			synth.Name, synth.Bytes, synth.Procedures, synth.Imports, "-", synth.Streams)
	}

	if *out == "" {
		fmt.Printf("generated %d programs + %d-module library + Synth.mod (seed %d, scale %g); use -o DIR to write files\n",
			len(suite.Programs), workload.LibLayers*workload.LibPerLayer, *seed, *scale)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := 0
	for _, name := range suite.Loader.Names() {
		base := name // already carries .def/.mod
		kind := source.Impl
		mod := base[:len(base)-4]
		if filepath.Ext(base) == ".def" {
			kind = source.Def
		}
		text, err := suite.Loader.Load(mod, kind)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(*out, base), []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n++
	}
	fmt.Printf("wrote %d files to %s\n", n, *out)
}
