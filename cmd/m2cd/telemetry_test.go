package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"m2cc/internal/faultinject"
	"m2cc/internal/obs"
)

// chromeTrace is the subset of the trace-event schema the endpoint
// tests validate; tracecheck (driven by serve_smoke.sh) checks the
// full cross-reference rules.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := copyAll(&buf, resp); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp, []byte(buf.String())
}

func copyAll(dst *strings.Builder, resp *http.Response) (int64, error) {
	var n int64
	buf := make([]byte, 4096)
	for {
		k, err := resp.Body.Read(buf)
		dst.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// TestTraceLifecycleUnderLoad drives concurrent traced requests with a
// keep cap smaller than the concurrency: every response still carries
// a trace ID, every fetched trace is well-formed JSON, and the store
// settles at the cap once the burst finishes (eviction never broke an
// in-flight request — run under -race this also proves no observer was
// torn down while recording).
func TestTraceLifecycleUnderLoad(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 2
	cfg.traceSample = 1
	cfg.queueDepth = 16
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "lifecycle"}
	const n = 10
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts, "/compile", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			ids[i] = resp.Header.Get("X-M2cd-Trace")
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			t.Fatalf("request %d completed without a trace ID", i)
		}
	}
	if held := s.traces.Held(); held != cfg.traceKeep {
		t.Fatalf("store holds %d traces after the burst, want the cap %d", held, cfg.traceKeep)
	}
	// The most recent summaries must be finished, and fetchable as
	// parseable trace JSON with at least one complete span.
	sums := s.traces.Summaries()
	if len(sums) != cfg.traceKeep {
		t.Fatalf("summaries = %d, want %d", len(sums), cfg.traceKeep)
	}
	for _, sum := range sums {
		if !sum.Done || sum.Status != http.StatusOK {
			t.Fatalf("retained trace not finished cleanly: %+v", sum)
		}
		resp, body := get(t, ts, "/debug/trace/"+sum.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET trace %s: status %d", sum.ID, resp.StatusCode)
		}
		var tr chromeTrace
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatalf("trace %s is not valid JSON: %v", sum.ID, err)
		}
		spans := 0
		for _, ev := range tr.TraceEvents {
			if ev.Ph == "X" {
				spans++
			}
		}
		if spans == 0 {
			t.Fatalf("trace %s has no complete spans", sum.ID)
		}
	}
}

// TestSampledDeterministicEndToEnd pins sampling to the admission
// sequence through the HTTP surface: with 1-in-3, the 1st, 4th and 7th
// serial requests are retrievable, the rest 404.
func TestSampledDeterministicEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceSampled
	cfg.traceKeep = 16
	cfg.traceSample = 3
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "sampled"}
	var ids []string
	for i := 0; i < 7; i++ {
		resp, body := post(t, ts, "/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		ids = append(ids, resp.Header.Get("X-M2cd-Trace"))
	}
	for i, id := range ids {
		resp, _ := get(t, ts, "/debug/trace/"+id)
		wantTraced := i%3 == 0 // admissions 1, 4, 7 (0-based 0, 3, 6)
		if wantTraced && resp.StatusCode != http.StatusOK {
			t.Fatalf("admission %d should be sampled; GET %s = %d", i+1, id, resp.StatusCode)
		}
		if !wantTraced && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("admission %d should not be sampled; GET %s = %d", i+1, id, resp.StatusCode)
		}
	}
}

// TestClientChosenTraceID round-trips an X-M2cd-Trace request header
// into the store and back out through /debug/trace.
func TestClientChosenTraceID(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 4
	cfg.traceSample = 1
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	buf, _ := json.Marshal(compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "chosen"})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/compile", strings.NewReader(string(buf)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-M2cd-Trace", "my-run.42")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-M2cd-Trace"); got != "my-run.42" {
		t.Fatalf("clean client trace ID not echoed: %q", got)
	}
	if tr, _ := get(t, ts, "/debug/trace/my-run.42"); tr.StatusCode != http.StatusOK {
		t.Fatalf("client-chosen ID not retrievable: %d", tr.StatusCode)
	}
}

// TestTraceProfileBlameSums fetches a sampled request's blame report
// and pins the PR 4 invariant through the endpoint: per-event blame
// sums to the request's total measured blocked time.
func TestTraceProfileBlameSums(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 4
	cfg.traceSample = 1
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, body := post(t, ts, "/compile", compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "blame"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-M2cd-Trace")

	presp, pbody := get(t, ts, "/debug/trace/"+id+"/profile?format=json")
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d: %s", presp.StatusCode, pbody)
	}
	var prof struct {
		TotalBlockedMs float64 `json:"total_blocked_ms"`
		Events         []struct {
			BlockedMs float64 `json:"blocked_ms"`
			QueueMs   float64 `json:"queue_ms"`
		} `json:"events"`
	}
	if err := json.Unmarshal(pbody, &prof); err != nil {
		t.Fatalf("profile JSON: %v\n%s", err, pbody)
	}
	// Each wait edge splits at its event's fire: dependency stall
	// (blocked) before, queue delay after.  The PR 4 invariant is over
	// the sum of both shares.
	var blamed float64
	for _, e := range prof.Events {
		blamed += e.BlockedMs + e.QueueMs
	}
	// Blame rows are rounded to µs precision independently; allow that
	// much slack per rounded field.
	tol := 0.002*float64(len(prof.Events)) + 0.001
	if diff := blamed - prof.TotalBlockedMs; diff > tol || diff < -tol {
		t.Fatalf("blame sums to %.3f ms, total blocked %.3f ms (tol %.3f)",
			blamed, prof.TotalBlockedMs, tol)
	}

	// The text rendering serves too.
	tresp, tbody := get(t, ts, "/debug/trace/"+id+"/profile")
	if tresp.StatusCode != http.StatusOK || len(tbody) == 0 {
		t.Fatalf("text profile: status %d, %d bytes", tresp.StatusCode, len(tbody))
	}
}

// TestCanceledTraceWellFormed cancels a traced request via its
// deadline and checks the trace is finished, marked 503, and still
// parses — a canceled request must not leave a pinned, half-open
// entry behind.
func TestCanceledTraceWellFormed(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 4
	cfg.traceSample = 1
	cfg.plan = faultinject.New().Arm(faultinject.SlowRequest, 1)
	cfg.slowDelay = 300 * time.Millisecond
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "cancel", DeadlineMS: 50}
	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-M2cd-Trace")
	if id == "" {
		t.Fatal("canceled request has no trace ID")
	}
	var sum obs.TraceSummary
	for _, c := range s.traces.Summaries() {
		if c.ID == id {
			sum = c
		}
	}
	if !sum.Done || sum.Status != http.StatusServiceUnavailable {
		t.Fatalf("canceled trace not finished as 503: %+v", sum)
	}
	tresp, tbody := get(t, ts, "/debug/trace/"+id)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("canceled trace not retrievable: %d", tresp.StatusCode)
	}
	var tr chromeTrace
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatalf("canceled trace is not valid JSON: %v", err)
	}
}

// TestPanickedTraceFinished crashes a traced handler and checks the
// instrumented middleware still finished the entry as a 500 — a panic
// must not pin the trace (and its observer) in the LRU ring forever.
func TestPanickedTraceFinished(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 4
	cfg.traceSample = 1
	cfg.plan = faultinject.New().Arm(faultinject.PanicHandler, 1)
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, _ := post(t, ts, "/compile", compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "boom"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	id := resp.Header.Get("X-M2cd-Trace")
	if id == "" {
		t.Fatal("panicked request has no trace ID")
	}
	for _, sum := range s.traces.Summaries() {
		if sum.ID == id {
			if !sum.Done || sum.Status != http.StatusInternalServerError {
				t.Fatalf("panicked trace not finished as 500: %+v", sum)
			}
			return
		}
	}
	t.Fatalf("panicked trace %s missing from the store", id)
}

// TestBodyIdenticalTracingOnOff pins the acceptance criterion: for
// every DKY strategy, the 200 body is byte-identical whether the
// daemon traces the request or not.
func TestBodyIdenticalTracingOnOff(t *testing.T) {
	for _, strategy := range []string{"avoidance", "pessimistic", "skeptical", "optimistic"} {
		t.Run(strategy, func(t *testing.T) {
			bodies := make([][]byte, 2)
			for i, mode := range []obs.TraceMode{obs.TraceOff, obs.TraceAll} {
				cfg := testConfig()
				cfg.traceMode = mode
				cfg.traceKeep = 4
				cfg.traceSample = 1
				s := newServer(cfg)
				ts := httptest.NewServer(s.handler())
				req := compileRequest{
					Module: "Demo", Sources: exampleSources(t),
					Client: "identical", Strategy: strategy,
				}
				resp, body := post(t, ts, "/compile", req)
				ts.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("mode %v: status %d: %s", mode, resp.StatusCode, body)
				}
				bodies[i] = body
			}
			if string(bodies[0]) != string(bodies[1]) {
				t.Fatalf("200 body differs between trace=off and trace=all:\n%s\n----\n%s",
					bodies[0], bodies[1])
			}
		})
	}
}

// TestPrometheusExposition is the golden test for the text format: the
// family set and order are pinned exactly, histogram buckets must be
// monotone with le="+Inf" equal to the count, and the counters must
// reflect the one request served.
func TestPrometheusExposition(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceSampled
	cfg.traceKeep = 4
	cfg.traceSample = 1
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if resp, body := post(t, ts, "/compile", compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "prom"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts, "/metrics?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not the text exposition format", ct)
	}
	text := string(body)

	// Golden family list, in exposition order.
	wantFamilies := []string{
		"m2cd_uptime_seconds gauge",
		"m2cd_draining gauge",
		"m2cd_waiting gauge",
		"m2cd_service_ewma_ms gauge",
		"m2cd_admitted_total counter",
		"m2cd_completed_total counter",
		"m2cd_shed_queue_full_total counter",
		"m2cd_rate_limited_total counter",
		"m2cd_rejected_draining_total counter",
		"m2cd_deadline_canceled_total counter",
		"m2cd_handler_panics_total counter",
		"m2cd_compile_faults_total counter",
		"m2cd_sequential_served_total counter",
		"m2cd_breaker_opens_total counter",
		"m2cd_responses_total counter",
		"m2cd_lint_findings_total counter",
		"m2cd_iface_cache_hits_total counter",
		"m2cd_iface_cache_misses_total counter",
		"m2cd_iface_cache_waits_total counter",
		"m2cd_iface_cache_evictions_total counter",
		"m2cd_stream_cache_hits_total counter",
		"m2cd_stream_cache_misses_total counter",
		"m2cd_stream_cache_evictions_total counter",
		"m2cd_stream_cache_entries gauge",
		"m2cd_traces_held gauge",
		"m2cd_trace_admitted_total counter",
		"m2cd_request_duration_ms histogram",
		"m2cd_queue_depth histogram",
		"m2cd_worker_occupancy histogram",
		"m2cd_stream_hit_ratio histogram",
	}
	var gotFamilies []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			gotFamilies = append(gotFamilies, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	if fmt.Sprint(gotFamilies) != fmt.Sprint(wantFamilies) {
		t.Fatalf("family set/order drifted:\ngot  %v\nwant %v", gotFamilies, wantFamilies)
	}

	for _, want := range []string{
		"m2cd_admitted_total 1",
		"m2cd_completed_total 1",
		`m2cd_responses_total{code="200"} 1`,
		"m2cd_trace_admitted_total 1",
		"m2cd_traces_held 1",
		"m2cd_request_duration_ms_count 1",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	checkHistogram(t, text, "m2cd_request_duration_ms")
	checkHistogram(t, text, "m2cd_queue_depth")
	checkHistogram(t, text, "m2cd_worker_occupancy")
	checkHistogram(t, text, "m2cd_stream_hit_ratio")
}

// checkHistogram asserts bucket monotonicity and the +Inf == _count
// identity for one family in the exposition text.
func checkHistogram(t *testing.T, text, name string) {
	t.Helper()
	bucketRe := regexp.MustCompile(`^` + name + `_bucket\{le="([^"]+)"\} (\d+)$`)
	var last int64 = -1
	var inf int64 = -1
	buckets := 0
	for _, line := range strings.Split(text, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatalf("%s: bad bucket value %q", name, m[2])
			}
			if v < last {
				t.Fatalf("%s: bucket le=%s count %d below previous %d (not cumulative)", name, m[1], v, last)
			}
			last = v
			buckets++
			if m[1] == "+Inf" {
				inf = v
			}
		}
		if strings.HasPrefix(line, name+"_count ") {
			count, _ := strconv.ParseInt(strings.TrimPrefix(line, name+"_count "), 10, 64)
			if inf != count {
				t.Fatalf("%s: le=\"+Inf\" bucket %d != count %d", name, inf, count)
			}
		}
	}
	if buckets < 2 || inf < 0 {
		t.Fatalf("%s: exposition incomplete (%d buckets, inf=%d)", name, buckets, inf)
	}
}

// TestDebugVars spot-checks the rolling-window endpoint after traffic.
func TestDebugVars(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 4
	cfg.traceSample = 1
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	post(t, ts, "/compile", compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "vars"})
	resp, body := get(t, ts, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var vars struct {
		Trace struct {
			Mode     string `json:"mode"`
			Admitted uint64 `json:"admitted"`
		} `json:"trace"`
		Windows    map[string]obs.RollingSnapshot   `json:"windows"`
		Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("vars JSON: %v\n%s", err, body)
	}
	if vars.Trace.Mode != "all" || vars.Trace.Admitted != 1 {
		t.Fatalf("trace vars wrong: %+v", vars.Trace)
	}
	if vars.Histograms["latency_ms"].Count != 1 {
		t.Fatalf("latency histogram count = %d, want 1", vars.Histograms["latency_ms"].Count)
	}
	var n int64
	for _, p := range vars.Windows["latency_ms"].Points {
		n += p.Count
	}
	if n != 1 {
		t.Fatalf("latency window holds %d points, want 1", n)
	}
}

// TestSSEDrainCleanliness attaches a live dashboard stream and then
// drains the daemon: the stream must say goodbye and close promptly,
// not hold Shutdown open for the drain timeout.
func TestSSEDrainCleanliness(t *testing.T) {
	cfg := testConfig()
	cfg.livePeriod = 20 * time.Millisecond
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/debug/live")
	if err != nil {
		t.Fatalf("GET /debug/live: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sawLive, sawBye := false, false
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	drained := false
	start := time.Now()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && !sawLive {
			var frame liveSample
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
				t.Fatalf("live frame is not JSON: %v (%q)", err, line)
			}
			sawLive = true
			s.startDrain()
			drained = true
		}
		if line == "event: bye" {
			sawBye = true
		}
	}
	if !sawLive || !drained {
		t.Fatal("never received a live frame")
	}
	if !sawBye {
		t.Fatal("drain closed the stream without the goodbye event")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stream took %v to close after drain", elapsed)
	}
}

// TestRateLimit exhausts one client's token bucket and checks the 429
// carries Retry-After, counters move, and other clients are untouched.
func TestRateLimit(t *testing.T) {
	cfg := testConfig()
	cfg.rateLimit = 0.001 // no refill within the test
	cfg.rateBurst = 2
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "greedy"}
	for i := 0; i < 2; i++ {
		if resp, body := post(t, ts, "/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMS <= 0 {
		t.Fatalf("429 body lacks retry_after_ms: %s", body)
	}

	// An unrelated client still gets through.
	other := req
	other.Client = "patient"
	if resp, body := post(t, ts, "/compile", other); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: status %d: %s", resp.StatusCode, body)
	}

	snap := s.snapshot()
	if snap.RateLimited != 1 {
		t.Fatalf("rate_limited = %d, want 1", snap.RateLimited)
	}
}

func TestLimiterRefill(t *testing.T) {
	l := newLimiterSet(10, 1) // 10 tokens/sec, burst 1
	base := time.Unix(1000, 0)
	if ok, _ := l.allow("c", base); !ok {
		t.Fatal("first request must pass on a full bucket")
	}
	ok, retry := l.allow("c", base)
	if ok {
		t.Fatal("empty bucket allowed a request")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry = %v, want ~100ms", retry)
	}
	if ok, _ := l.allow("c", base.Add(150*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill after the advertised wait")
	}
	var nilSet *limiterSet
	if ok, _ := nilSet.allow("c", base); !ok {
		t.Fatal("nil limiter must be a no-op allow")
	}
}

// TestRequestLog checks the structured log line joins status, client,
// trace ID, serving path, and stream tally for one request.
func TestRequestLog(t *testing.T) {
	cfg := testConfig()
	cfg.traceMode = obs.TraceAll
	cfg.traceKeep = 4
	cfg.traceSample = 1
	s := newServer(cfg)
	var logBuf syncBuffer
	s.logw = &logBuf
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, _ := post(t, ts, "/compile", compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "logged"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	line := strings.TrimSpace(logBuf.String())
	var entry requestLog
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, line)
	}
	if entry.Client != "logged" || entry.Status != http.StatusOK ||
		entry.Path != "/compile" || entry.Serve != "concurrent" {
		t.Fatalf("log entry fields wrong: %+v", entry)
	}
	if entry.Trace == "" || entry.Trace != resp.Header.Get("X-M2cd-Trace") {
		t.Fatalf("log trace %q does not match header %q", entry.Trace, resp.Header.Get("X-M2cd-Trace"))
	}
	if entry.DurMS <= 0 || entry.Streams < 1 {
		t.Fatalf("log entry missing measurements: %+v", entry)
	}
}

// syncBuffer is a mutex-guarded string buffer for capturing log lines.
type syncBuffer struct {
	mu sync.Mutex // guards: b
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
