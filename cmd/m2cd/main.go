// Command m2cd is the resilient compile-as-a-service daemon: it
// serves concurrent Modula-2+ compilations over HTTP/JSON from one
// shared Supervisor-backed pool and interface cache.
//
// Endpoints:
//
//	POST /compile  {"module":"Main","sources":[{"name":"Main","kind":"mod","text":"..."}]}
//	POST /lint     same request; responds with static-analysis findings
//	GET  /healthz  200 "ok" while serving, 200 "draining" during drain
//	GET  /readyz   200 "ready" while admitting, 503 once draining
//	GET  /metrics  JSON counters; ?format=prometheus for text exposition
//
// Telemetry plane (PR 9): every admitted request gets a trace ID
// (X-M2cd-Trace request header honored, response header always set);
// -trace=sampled|all records a per-request Observer retrievable as
// Perfetto JSON.  Structured JSON request logs go to stderr (-quiet
// suppresses them).
//
//	GET  /debug/trace          index of held traces
//	GET  /debug/trace/{id}     Chrome/Perfetto trace-event JSON
//	GET  /debug/trace/{id}/profile  critical-path + blame (?format=json)
//	GET  /debug/vars           rolling windows + histograms, JSON
//	GET  /debug/live           ~1 Hz SSE feed (occupancy, shed, hit rates)
//
// -rate-limit/-rate-burst arm a per-client token bucket (429 +
// Retry-After); -debug-addr serves net/http/pprof on a second
// listener.
//
// Robustness knobs (see server.go for the semantics): -max-inflight
// and -queue bound admission; -deadline/-max-deadline bound each
// request's service time and propagate cancellation into the
// compiler; -breaker-trips/-breaker-cooldown drive the per-client
// circuit breaker; -drain-timeout bounds the SIGTERM graceful drain.
//
// Fault injection for chaos drills: -inject arms named points (e.g.
// "panic-handler:3,slow-request:2"), -inject-slow sets the latency an
// armed slow-request point adds.
//
// Exit status: 0 after a clean drain (all in-flight requests
// finished), 1 if the drain deadline forced connections closed or
// serving failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"m2cc"
	"m2cc/internal/faultinject"
	"m2cc/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 4, "worker slots per compilation")
		dky        = flag.String("dky", "skeptical", "default DKY strategy: avoidance|pessimistic|skeptical|optimistic")
		inflight   = flag.Int("max-inflight", 4, "maximum concurrently running compilations")
		queue      = flag.Int("queue", 8, "admission queue depth beyond -max-inflight before shedding with 429")
		deadline   = flag.Duration("deadline", 10*time.Second, "default per-request deadline")
		maxDL      = flag.Duration("max-deadline", 30*time.Second, "hard cap on client-requested deadlines")
		drain      = flag.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight requests")
		grace      = flag.Duration("drain-grace", 0, "readiness propagation window: after SIGTERM, keep answering probes (readyz 503) this long before closing the listener")
		stall      = flag.Duration("stall-timeout", m2cc.DefaultStallTimeout, "bound on waits for a foreign interface-cache leader (must be >= 0)")
		trips      = flag.Int("breaker-trips", 3, "consecutive faults before a client's circuit breaker opens")
		cooldown   = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker routes a client sequentially")
		ifaceCap   = flag.Int("iface-cap", 0, "interface-cache entry cap before LRU eviction (0 = unbounded)")
		streamCap  = flag.Int("stream-cap", 0, "stream-cache entry cap before LRU eviction (0 = unbounded)")
		injectSpec = flag.String("inject", "", "arm fault-injection points: \"point:N[,point:N...]\" (see -list-inject)")
		listInject = flag.Bool("list-inject", false, "list injection point names and exit")
		slowDelay  = flag.Duration("inject-slow", 250*time.Millisecond, "latency added by an armed slow-request point")
		metricsOut = flag.String("metrics-out", "", "file to write the final metrics snapshot to at drain (default stderr)")
		readyFile  = flag.String("ready-file", "", "file to write the bound listen address to once serving (for scripts)")

		traceFlag   = flag.String("trace", "off", "per-request tracing: off|sampled|all (see /debug/trace)")
		traceKeep   = flag.Int("trace-keep", 64, "finished request traces kept in the LRU ring")
		traceSample = flag.Int("trace-sample", 8, "in sampled mode, trace 1 in N admitted requests")
		rateLimit   = flag.Float64("rate-limit", 0, "per-client request rate in req/s (token bucket; 0 = unlimited)")
		rateBurst   = flag.Int("rate-burst", 4, "per-client token-bucket burst")
		debugAddr   = flag.String("debug-addr", "", "separate listener for net/http/pprof (host:port; empty = off)")
		livePeriod  = flag.Duration("live-period", time.Second, "interval between /debug/live SSE frames")
		quiet       = flag.Bool("quiet", false, "suppress per-request JSON log lines on stderr")
	)
	flag.Parse()

	if *listInject {
		for _, p := range faultinject.Points() {
			fmt.Println(p)
		}
		return 0
	}

	strategy, err := m2cc.ParseStrategy(*dky)
	if err != nil {
		log.Printf("m2cd: %v", err)
		return 2
	}
	plan, err := parseInject(*injectSpec)
	if err != nil {
		log.Printf("m2cd: %v", err)
		return 2
	}
	traceMode, err := obs.ParseTraceMode(*traceFlag)
	if err != nil {
		log.Printf("m2cd: %v", err)
		return 2
	}
	cfg := config{
		addr:            *addr,
		workers:         *workers,
		strategy:        strategy,
		maxInflight:     *inflight,
		queueDepth:      *queue,
		defaultDeadline: *deadline,
		maxDeadline:     *maxDL,
		drainTimeout:    *drain,
		stallTimeout:    *stall,
		breakerTrips:    *trips,
		breakerCooldown: *cooldown,
		slowDelay:       *slowDelay,
		ifaceCap:        *ifaceCap,
		streamCap:       *streamCap,
		plan:            plan,
		metricsOut:      *metricsOut,
		readyFile:       *readyFile,
		traceMode:       traceMode,
		traceKeep:       *traceKeep,
		traceSample:     *traceSample,
		rateLimit:       *rateLimit,
		rateBurst:       *rateBurst,
		livePeriod:      *livePeriod,
	}
	if err := cfg.validate(); err != nil {
		log.Printf("m2cd: %v", err)
		return 2
	}
	if *grace < 0 {
		log.Printf("m2cd: -drain-grace must not be negative (got %v)", *grace)
		return 2
	}

	s := newServer(cfg)
	if !*quiet {
		s.logw = os.Stderr
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Printf("m2cd: listen: %v", err)
		return 1
	}
	if *debugAddr != "" {
		// pprof rides a second listener so profiling traffic never
		// competes with (or gets exposed on) the serving address.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Printf("m2cd: debug listen: %v", err)
			ln.Close()
			return 1
		}
		dsrv := &http.Server{Handler: http.DefaultServeMux}
		go dsrv.Serve(dln)
		defer dsrv.Close()
		log.Printf("m2cd: pprof on %s", dln.Addr())
	}
	bound := ln.Addr().String()
	if cfg.readyFile != "" {
		if err := os.WriteFile(cfg.readyFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Printf("m2cd: ready-file: %v", err)
			ln.Close()
			return 1
		}
	}
	log.Printf("m2cd: serving on %s (inflight=%d queue=%d deadline=%v)",
		bound, cfg.maxInflight, cfg.queueDepth, cfg.defaultDeadline)

	srv := &http.Server{Handler: s.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		log.Printf("m2cd: %v: draining (timeout %v)", sig, cfg.drainTimeout)
	case err := <-serveErr:
		log.Printf("m2cd: serve: %v", err)
		return 1
	}

	// Graceful drain: stop admission first so queued requests are
	// answered with 503 instead of starting work the shutdown would
	// outwait; hold the listener open for the readiness-propagation
	// grace so load balancers see readyz flip before connections start
	// being refused; then let in-flight requests finish.
	s.startDrain()
	if *grace > 0 {
		time.Sleep(*grace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	flushMetrics(s, cfg.metricsOut)
	if shutdownErr != nil {
		log.Printf("m2cd: drain deadline exceeded, forcing close: %v", shutdownErr)
		srv.Close()
		return 1
	}
	log.Printf("m2cd: drained cleanly")
	return 0
}

// parseInject parses "point:N[,point:N...]" into an armed plan; an
// empty spec arms nothing (nil plan, zero overhead).
func parseInject(spec string) (*faultinject.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := faultinject.New()
	for _, part := range strings.Split(spec, ",") {
		name, nstr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad -inject entry %q: want point:N", part)
		}
		pt, err := faultinject.ParsePoint(name)
		if err != nil {
			return nil, fmt.Errorf("bad -inject entry %q: %v", part, err)
		}
		n, err := strconv.ParseInt(nstr, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -inject entry %q: hit index must be a positive integer", part)
		}
		plan.Arm(pt, n)
	}
	return plan, nil
}

// flushMetrics writes the final snapshot where the operator asked
// (file or stderr); losing the last counters to a crash-free exit
// would defeat the point of draining gracefully.
func flushMetrics(s *server, path string) {
	snap := s.snapshot()
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Printf("m2cd: metrics: %v", err)
		return
	}
	if path == "" {
		fmt.Fprintf(os.Stderr, "m2cd: final metrics:\n%s\n", buf)
		return
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Printf("m2cd: metrics: %v", err)
	}
}
