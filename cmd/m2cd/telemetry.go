// m2cd's telemetry plane: rolling histograms and windows over the
// serving path, per-request traces behind /debug/trace, Prometheus
// text exposition behind /metrics?format=prometheus, a live SSE feed,
// and structured JSON request logs.
//
// The instrumented middleware is the single choke point: it wraps
// /compile and /lint, stamps every response's latency into the
// histograms and windows, closes the request's trace entry (the
// handler only opens it), and emits one JSON log line.  Putting the
// bookkeeping here rather than in the handler keeps it on every exit
// path — shed, canceled, panicked — without threading state through
// each early return.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"m2cc"
	"m2cc/internal/obs"
)

// telemetry aggregates the serving path's request-scoped measurements:
// process-lifetime histograms (Prometheus exposition) and one-minute
// rolling windows (/debug/vars, the SSE feed).
type telemetry struct {
	latency   *obs.Histogram // service time of every /compile and /lint response, ms
	depth     *obs.Histogram // queued requests observed at each admission
	occupancy *obs.Histogram // held inflight slots observed at each admission
	hitRatio  *obs.Histogram // per-request stream-cache hit ratio (probed requests only)

	winLatency  *obs.Rolling // latency series
	winInflight *obs.Rolling // occupancy series
	winShed     *obs.Rolling // one point per 429/503 response
	winHits     *obs.Rolling // stream-cache hit-ratio series
}

func newTelemetry() *telemetry {
	const slots = 60 // one minute of per-second slots
	return &telemetry{
		latency:     obs.NewHistogram(obs.DefaultLatencyBucketsMS),
		depth:       obs.NewHistogram(obs.DefaultDepthBuckets),
		occupancy:   obs.NewHistogram(obs.DefaultDepthBuckets),
		hitRatio:    obs.NewHistogram(obs.DefaultRatioBuckets),
		winLatency:  obs.NewRolling(slots, time.Second),
		winInflight: obs.NewRolling(slots, time.Second),
		winShed:     obs.NewRolling(slots, time.Second),
		winHits:     obs.NewRolling(slots, time.Second),
	}
}

// observeAdmission records the queue depth and slot occupancy seen by
// one request at the moment it acquired its slot.
func (t *telemetry) observeAdmission(queued, occupied int) {
	if t == nil {
		return
	}
	t.depth.Observe(float64(queued))
	t.occupancy.Observe(float64(occupied))
	t.winInflight.Add(float64(occupied))
}

// observeResponse folds one finished request (any status, any exit
// path) into the histograms and windows.  Stream-cache traffic is read
// from the response headers — the same numbers the client sees.
func (t *telemetry) observeResponse(status int, durMS float64, hdr http.Header) {
	if t == nil {
		return
	}
	t.latency.Observe(durMS)
	t.winLatency.Add(durMS)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		t.winShed.Add(1)
	}
	hits := headerInt(hdr, "X-M2cd-Stream-Hits")
	misses := headerInt(hdr, "X-M2cd-Stream-Misses")
	if probed := hits + misses; probed > 0 {
		ratio := float64(hits) / float64(probed)
		t.hitRatio.Observe(ratio)
		t.winHits.Add(ratio)
	}
}

func headerInt(h http.Header, key string) int {
	n, _ := strconv.Atoi(h.Get(key))
	return n
}

// ---- instrumented middleware ----

// statusRecorder captures the status code written through it so the
// instrumented middleware can attribute the response after the handler
// returns.  The handler deposits the client identity it resolved (body
// field, header, or remote address) in client — same goroutine, no
// lock needed.
type statusRecorder struct {
	http.ResponseWriter
	status int
	client string
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrumented wraps a compile/lint handler with the per-request
// bookkeeping: latency histograms and windows, trace-entry completion,
// and the structured request log.  It runs outside recoverPanic so a
// panicked handler's 500 is still recorded and its trace entry still
// unpinned — otherwise a crashed traced request would pin its LRU slot
// forever.
func (s *server) instrumented(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		began := time.Now()
		h(rec, r)
		durMS := float64(time.Since(began)) / float64(time.Millisecond)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.tel.observeResponse(status, durMS, rec.Header())
		streams := headerInt(rec.Header(), "X-M2cd-Streams")
		servePath := rec.Header().Get("X-M2cd-Path")
		if id := rec.Header().Get("X-M2cd-Trace"); id != "" {
			if e := s.traces.Get(id); e != nil && !e.Done {
				e.Obs.Finish()
				s.traces.Finish(e, rec.client, r.URL.Path, servePath, status, durMS, streams)
			}
		}
		s.logRequest(r, rec, status, servePath, durMS, streams)
	}
}

// requestLog is one structured log line: everything needed to join a
// log entry to its trace, client, and serving decision.
type requestLog struct {
	Time     string  `json:"time"`
	Trace    string  `json:"trace,omitempty"`
	Client   string  `json:"client,omitempty"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Status   int     `json:"status"`
	Serve    string  `json:"serve,omitempty"` // concurrent | sequential
	DurMS    float64 `json:"dur_ms"`
	Streams  int     `json:"streams,omitempty"`
	Hits     int     `json:"stream_hits,omitempty"`
	Misses   int     `json:"stream_misses,omitempty"`
	Fellback bool    `json:"fellback,omitempty"`
}

// logRequest emits one JSON line per served request; a nil logw (the
// test default) disables logging without disabling the recorder.
func (s *server) logRequest(r *http.Request, rec *statusRecorder, status int, servePath string, durMS float64, streams int) {
	if s.logw == nil {
		return
	}
	entry := requestLog{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Trace:    rec.Header().Get("X-M2cd-Trace"),
		Client:   rec.client,
		Method:   r.Method,
		Path:     r.URL.Path,
		Status:   status,
		Serve:    servePath,
		DurMS:    durMS,
		Streams:  streams,
		Hits:     headerInt(rec.Header(), "X-M2cd-Stream-Hits"),
		Misses:   headerInt(rec.Header(), "X-M2cd-Stream-Misses"),
		Fellback: rec.Header().Get("X-M2cd-Fellback") == "1",
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.logw.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// ---- /debug/trace ----

func (s *server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Mode     string             `json:"mode"`
		Held     int                `json:"held"`
		Admitted uint64             `json:"admitted"`
		Traces   []obs.TraceSummary `json:"traces"`
	}{
		Mode:     s.traces.Mode().String(),
		Held:     s.traces.Held(),
		Admitted: s.traces.Admitted(),
		Traces:   s.traces.Summaries(),
	})
}

// handleTraceGet serves one trace as Chrome/Perfetto trace-event JSON
// — the same format m2c -trace writes, so tracecheck and the Perfetto
// UI both accept it.  In-flight traces are served too; the observer's
// snapshot is always coherent.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := s.traces.Get(id)
	if e == nil {
		s.writeError(w, http.StatusNotFound, "unknown trace "+id, 0)
		return
	}
	s.countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	e.Obs.WriteChromeTrace(w)
}

// handleTraceProfile serves the critical-path + blame report for one
// request: text by default, the machine-readable profile under
// ?format=json.
func (s *server) handleTraceProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := s.traces.Get(id)
	if e == nil {
		s.writeError(w, http.StatusNotFound, "unknown trace "+id, 0)
		return
	}
	p := m2cc.BuildProfile(e.Obs)
	s.countStatus(http.StatusOK)
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		p.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, p.Render(30))
}

// ---- /debug/vars ----

func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	type traceVars struct {
		Mode     string `json:"mode"`
		Held     int    `json:"held"`
		Admitted uint64 `json:"admitted"`
	}
	s.writeJSON(w, http.StatusOK, struct {
		UptimeMS   int64                            `json:"uptime_ms"`
		Trace      traceVars                        `json:"trace"`
		Windows    map[string]obs.RollingSnapshot   `json:"windows"`
		Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
	}{
		UptimeMS: time.Since(s.start).Milliseconds(),
		Trace: traceVars{
			Mode:     s.traces.Mode().String(),
			Held:     s.traces.Held(),
			Admitted: s.traces.Admitted(),
		},
		Windows: map[string]obs.RollingSnapshot{
			"latency_ms":       s.tel.winLatency.Snapshot(),
			"inflight":         s.tel.winInflight.Snapshot(),
			"shed":             s.tel.winShed.Snapshot(),
			"stream_hit_ratio": s.tel.winHits.Snapshot(),
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"latency_ms":       s.tel.latency.Snapshot(),
			"queue_depth":      s.tel.depth.Snapshot(),
			"occupancy":        s.tel.occupancy.Snapshot(),
			"stream_hit_ratio": s.tel.hitRatio.Snapshot(),
		},
	})
}

// ---- /debug/live (SSE) ----

// liveSample is one SSE frame: the operator's at-a-glance view of the
// serving path, refreshed about once a second.
type liveSample struct {
	UptimeMS       int64   `json:"uptime_ms"`
	Inflight       int     `json:"inflight"`
	Waiting        int64   `json:"waiting"`
	Occupancy      float64 `json:"occupancy"` // inflight / maxInflight
	ShedPerSec     float64 `json:"shed_per_sec"`
	LatencyMeanMS  float64 `json:"latency_mean_ms"`  // over the rolling window
	StreamHitRatio float64 `json:"stream_hit_ratio"` // over the rolling window
	TracesHeld     int     `json:"traces_held"`
	Draining       bool    `json:"draining"`
}

func windowMean(s obs.RollingSnapshot) float64 {
	var n int64
	var sum float64
	for _, p := range s.Points {
		n += p.Count
		sum += p.Sum
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (s *server) liveSnapshot() liveSample {
	inflight := len(s.sem)
	return liveSample{
		UptimeMS:       time.Since(s.start).Milliseconds(),
		Inflight:       inflight,
		Waiting:        s.waiting.Load(),
		Occupancy:      float64(inflight) / float64(s.cfg.maxInflight),
		ShedPerSec:     s.tel.winShed.Rate(),
		LatencyMeanMS:  windowMean(s.tel.winLatency.Snapshot()),
		StreamHitRatio: windowMean(s.tel.winHits.Snapshot()),
		TracesHeld:     s.traces.Held(),
		Draining:       s.draining.Load(),
	}
}

// handleLive streams liveSample frames as server-sent events until
// the client disconnects or the daemon drains.  Selecting on drainCh
// is what makes SIGTERM clean: without it an attached dashboard would
// hold http.Server.Shutdown open for the whole drain timeout.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal: streaming unsupported", 0)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	s.countStatus(http.StatusOK)
	period := s.cfg.livePeriod
	if period <= 0 {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		payload, err := json.Marshal(s.liveSnapshot())
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: live\ndata: %s\n\n", payload)
		fl.Flush()
		select {
		case <-tick.C:
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// One explicit goodbye so a dashboard can tell a drain from a
			// dropped connection, then release the stream.
			fmt.Fprint(w, "event: bye\ndata: draining\n\n")
			fl.Flush()
			return
		}
	}
}

// ---- Prometheus exposition ----

// writePrometheus renders the metrics snapshot in the Prometheus text
// format (version 0.0.4): counters and gauges from the JSON snapshot,
// plus the telemetry histograms with cumulative le-buckets.
func (s *server) writePrometheus(w http.ResponseWriter) {
	snap := s.snapshot()
	s.countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	promGauge(w, "m2cd_uptime_seconds", "Seconds since the daemon started.", float64(snap.UptimeMS)/1000)
	promGauge(w, "m2cd_draining", "1 while the daemon is draining, else 0.", boolToFloat(snap.Draining))
	promGauge(w, "m2cd_waiting", "Requests admitted past the capacity check (queued or running).", float64(snap.Waiting))
	promGauge(w, "m2cd_service_ewma_ms", "Exponentially weighted service time in milliseconds.", snap.ServiceEWMAMS)

	promCounter(w, "m2cd_admitted_total", "Requests that acquired an inflight slot.", snap.Admitted)
	promCounter(w, "m2cd_completed_total", "Requests served to completion.", snap.Completed)
	promCounter(w, "m2cd_shed_queue_full_total", "Requests shed with 429 because the admission queue was full.", snap.ShedQueueFull)
	promCounter(w, "m2cd_rate_limited_total", "Requests shed with 429 by the per-client rate limiter.", snap.RateLimited)
	promCounter(w, "m2cd_rejected_draining_total", "Requests rejected because the daemon was draining.", snap.RejectedDraining)
	promCounter(w, "m2cd_deadline_canceled_total", "Requests canceled by their deadline.", snap.DeadlineCanceled)
	promCounter(w, "m2cd_handler_panics_total", "Handler panics converted to 500s.", snap.HandlerPanics)
	promCounter(w, "m2cd_compile_faults_total", "Concurrent compilations that faulted.", snap.CompileFaults)
	promCounter(w, "m2cd_sequential_served_total", "Requests served by the sequential path.", snap.SequentialServed)
	promCounter(w, "m2cd_breaker_opens_total", "Per-client circuit breakers opened.", snap.BreakerOpens)

	// Response codes, sorted for a deterministic exposition (the golden
	// test and any text diff depend on stable order).
	fmt.Fprint(w, "# HELP m2cd_responses_total Responses by HTTP status code.\n# TYPE m2cd_responses_total counter\n")
	codes := make([]string, 0, len(snap.ByStatus))
	for code := range snap.ByStatus {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "m2cd_responses_total{code=%q} %d\n", code, snap.ByStatus[code])
	}

	// Lint findings by family code, same discipline as the response
	// codes: HELP/TYPE are unconditional so the family list is stable,
	// label values are sorted for a deterministic exposition.
	fmt.Fprint(w, "# HELP m2cd_lint_findings_total Lint findings reported, by finding-family code.\n# TYPE m2cd_lint_findings_total counter\n")
	families := make([]string, 0, len(snap.LintFindings))
	for f := range snap.LintFindings {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		fmt.Fprintf(w, "m2cd_lint_findings_total{family=%q} %d\n", f, snap.LintFindings[f])
	}

	promCounter(w, "m2cd_iface_cache_hits_total", "Interface-cache hits.", snap.Cache.Hits)
	promCounter(w, "m2cd_iface_cache_misses_total", "Interface-cache misses (leader compilations).", snap.Cache.Misses)
	promCounter(w, "m2cd_iface_cache_waits_total", "Interface-cache waits behind a leader.", snap.Cache.Waits)
	promCounter(w, "m2cd_iface_cache_evictions_total", "Interface-cache LRU evictions.", snap.Cache.Evictions)
	promCounter(w, "m2cd_stream_cache_hits_total", "Stream-cache hits.", snap.StreamCache.Hits)
	promCounter(w, "m2cd_stream_cache_misses_total", "Stream-cache misses.", snap.StreamCache.Misses)
	promCounter(w, "m2cd_stream_cache_evictions_total", "Stream-cache LRU evictions.", snap.StreamCache.Evictions)
	promGauge(w, "m2cd_stream_cache_entries", "Stream-cache resident entries.", float64(snap.StreamCache.Entries))

	promGauge(w, "m2cd_traces_held", "Request traces held in the LRU ring.", float64(snap.TracesHeld))
	promCounter(w, "m2cd_trace_admitted_total", "Requests through the trace store's sampling domain.", int64(snap.TraceAdmitted))

	promHistogram(w, "m2cd_request_duration_ms", "Request service time in milliseconds.", s.tel.latency.Snapshot())
	promHistogram(w, "m2cd_queue_depth", "Queued requests observed at admission.", s.tel.depth.Snapshot())
	promHistogram(w, "m2cd_worker_occupancy", "Held inflight slots observed at admission.", s.tel.occupancy.Snapshot())
	promHistogram(w, "m2cd_stream_hit_ratio", "Per-request stream-cache hit ratio.", s.tel.hitRatio.Snapshot())
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
}

// promHistogram writes one histogram family.  Bucket values are the
// snapshot's cumulative counts, so monotonicity and le="+Inf" == count
// hold by construction — the serve smoke test scrapes and checks both.
func promHistogram(w io.Writer, name, help string, s obs.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, b := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
