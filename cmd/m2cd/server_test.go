package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"m2cc"
	"m2cc/internal/faultinject"
)

// loaderFrom mirrors the daemon's request-to-loader translation for
// local baseline compiles.
func loaderFrom(t *testing.T, sources []srcFile) m2cc.Loader {
	t.Helper()
	loader := m2cc.NewMapLoader()
	for _, f := range sources {
		kind := m2cc.Impl
		if f.Kind == "def" {
			kind = m2cc.Def
		}
		loader.Add(f.Name, kind, f.Text)
	}
	return loader
}

// mustListing compiles Demo sequentially and returns its listing.
func mustListing(t *testing.T, loader m2cc.Loader) string {
	t.Helper()
	res := m2cc.CompileSequential("Demo", loader)
	if res.Failed() {
		t.Fatalf("baseline sequential compile failed:\n%s", res.Diags)
	}
	return res.Object.Listing()
}

// exampleSources builds a compile request's sources from the repo's
// examples/modules tree (Demo imports Fib).
func exampleSources(t *testing.T) []srcFile {
	t.Helper()
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join("..", "..", "examples", "modules", name))
		if err != nil {
			t.Fatalf("example source: %v", err)
		}
		return string(b)
	}
	return []srcFile{
		{Name: "Demo", Kind: "mod", Text: read("Demo.mod")},
		{Name: "Fib", Kind: "def", Text: read("Fib.def")},
		{Name: "Fib", Kind: "mod", Text: read("Fib.mod")},
	}
}

// testConfig returns a small, fast daemon configuration.
func testConfig() config {
	return config{
		workers:         4,
		maxInflight:     2,
		queueDepth:      2,
		defaultDeadline: 10 * time.Second,
		maxDeadline:     30 * time.Second,
		drainTimeout:    5 * time.Second,
		stallTimeout:    500 * time.Millisecond,
		breakerTrips:    3,
		breakerCooldown: time.Hour,
	}
}

// post sends req to path on ts and returns the response with its body
// fully read.
func post(t *testing.T, ts *httptest.Server, path string, req compileRequest) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, body
}

func TestCompileEndToEnd(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "e2e"}
	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-M2cd-Path"); got != "concurrent" {
		t.Fatalf("X-M2cd-Path = %q, want concurrent", got)
	}
	var cr compileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if !cr.OK || cr.Listing == "" {
		t.Fatalf("expected clean compile with a listing, got ok=%v diags=%q", cr.OK, cr.Diags)
	}
	// The daemon's listing must match the local compiler byte for byte.
	loader := loaderFrom(t, req.Sources)
	want := mustListing(t, loader)
	if cr.Listing != want {
		t.Fatalf("daemon listing differs from local compile\ngot:\n%s\nwant:\n%s", cr.Listing, want)
	}
	// A second, cache-warm request returns the identical body, served
	// largely from the process-wide stream cache.
	resp2, body2 := post(t, ts, "/compile", req)
	if !bytes.Equal(body, body2) {
		t.Fatalf("cache-warm response differs from cold response\ncold: %s\nwarm: %s", body, body2)
	}
	if hits := resp2.Header.Get("X-M2cd-Stream-Hits"); hits == "" || hits == "0" {
		t.Fatalf("warm request reported no stream-cache hits (X-M2cd-Stream-Hits=%q)", hits)
	}
	snap := s.snapshot()
	if snap.StreamCache.Hits == 0 || snap.StreamCache.Entries == 0 {
		t.Fatalf("warm stream-cache traffic missing from /metrics: %+v", snap.StreamCache)
	}
}

func TestLintEndpoint(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "lint"}
	resp, body := post(t, ts, "/lint", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr compileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if cr.Findings == nil {
		t.Fatal("lint response missing findings")
	}
	if cr.Listing != "" {
		t.Fatal("lint response must not carry a listing")
	}
}

// TestLintFindingsTelemetry: a findings-bearing lint request reports
// per-family counts in the X-M2cd-Findings header and accumulates them
// into the lint_findings snapshot and the Prometheus counter.
func TestLintFindingsTelemetry(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "modules", "ConcFindings.mod"))
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	req := compileRequest{
		Module:  "ConcFindings",
		Sources: []srcFile{{Name: "ConcFindings", Kind: "mod", Text: string(b)}},
		Client:  "lint-telemetry",
	}
	resp, body := post(t, ts, "/lint", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	const wantHdr = "conc-deadlock=1,conc-double-lock=1,conc-guard=2"
	if got := resp.Header.Get("X-M2cd-Findings"); got != wantHdr {
		t.Fatalf("X-M2cd-Findings = %q, want %q", got, wantHdr)
	}

	_, metBody := get(t, ts, "/metrics")
	var snap metricsSnapshot
	if err := json.Unmarshal(metBody, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.LintFindings["conc-guard"] != 2 || snap.LintFindings["conc-deadlock"] != 1 || snap.LintFindings["conc-double-lock"] != 1 {
		t.Fatalf("lint_findings = %v", snap.LintFindings)
	}

	_, prom := get(t, ts, "/metrics?format=prometheus")
	if !strings.Contains(string(prom), `m2cd_lint_findings_total{family="conc-guard"} 2`) {
		t.Fatalf("prometheus exposition missing conc-guard counter:\n%s", prom)
	}
}

func TestBadRequests(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  compileRequest
	}{
		{"no module", compileRequest{Sources: exampleSources(t)}},
		{"no sources", compileRequest{Module: "Demo"}},
		{"bad kind", compileRequest{Module: "Demo", Sources: []srcFile{{Name: "Demo", Kind: "imp", Text: "x"}}}},
		{"bad strategy", compileRequest{Module: "Demo", Sources: exampleSources(t), Strategy: "psychic"}},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, "/compile", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: malformed error body %s", tc.name, body)
		}
	}
	// A negative deadline is rejected outright, not silently treated as
	// "no deadline" — the client asked for a bound the daemon cannot
	// honor.
	neg := compileRequest{Module: "Demo", Sources: exampleSources(t), DeadlineMS: -1}
	resp0, body0 := post(t, ts, "/compile", neg)
	if resp0.StatusCode != http.StatusBadRequest {
		t.Fatalf("deadline_ms=-1: status %d, want 400 (%s)", resp0.StatusCode, body0)
	}
	var er0 errorResponse
	if err := json.Unmarshal(body0, &er0); err != nil || !strings.Contains(er0.Error, "deadline_ms must not be negative") {
		t.Fatalf("deadline_ms=-1: unclear error body %s", body0)
	}
	// Non-POST methods are rejected.
	resp, err := ts.Client().Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status %d, want 405", resp.StatusCode)
	}
}

// TestShedQueueFull wedges the single admission slot with an injected
// slow request and verifies the next request is shed with 429 and a
// Retry-After hint instead of queueing.
func TestShedQueueFull(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.queueDepth = 0
	cfg.plan = faultinject.New().Arm(faultinject.SlowRequest, 1)
	cfg.slowDelay = 2 * time.Second
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "shed"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := post(t, ts, "/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slow request: status %d, want 200", resp.StatusCode)
		}
	}()
	// Wait for the slow request to hold the only slot.
	for i := 0; s.waiting.Load() == 0; i++ {
		if i > 2000 {
			t.Fatal("slow request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let it pass the capacity check into the slot

	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMS <= 0 {
		t.Fatalf("malformed shed body: %s", body)
	}
	<-done
	if snap := s.snapshot(); snap.ShedQueueFull != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", snap.ShedQueueFull)
	}
}

// TestDeadlineExceeded injects service latency past the request's
// deadline: the daemon must answer 503 promptly, having canceled the
// compilation rather than completing it late.
func TestDeadlineExceeded(t *testing.T) {
	cfg := testConfig()
	cfg.plan = faultinject.New().Arm(faultinject.SlowRequest, 1)
	cfg.slowDelay = time.Second
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), DeadlineMS: 50, Client: "dl"}
	began := time.Now()
	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(began); elapsed > 800*time.Millisecond {
		t.Fatalf("deadline response took %v; the injected delay was not cut short", elapsed)
	}
	if snap := s.snapshot(); snap.DeadlineCanceled != 1 {
		t.Fatalf("deadline_canceled = %d, want 1", snap.DeadlineCanceled)
	}
	// The daemon is unharmed: the same request without a deadline
	// completes cleanly.
	req.DeadlineMS = 0
	resp, _ = post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d, want 200", resp.StatusCode)
	}
}

// TestPanicHandlerRecovery arms the PanicHandler point: the crashed
// handler must yield a well-formed 500 and release its admission slot.
func TestPanicHandlerRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.plan = faultinject.New().Arm(faultinject.PanicHandler, 1)
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "panic"}
	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "panic") {
		t.Fatalf("malformed panic body: %s", body)
	}
	// The slot was released by the unwinding defer: with maxInflight=1
	// a leaked slot would wedge this follow-up forever.
	resp, _ = post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status %d, want 200 (admission slot leaked?)", resp.StatusCode)
	}
	if snap := s.snapshot(); snap.HandlerPanics != 1 {
		t.Fatalf("handler_panics = %d, want 1", snap.HandlerPanics)
	}
}

// TestBreakerRoutesSequential faults one client's compile and checks
// the breaker re-routes the client to the sequential compiler with a
// byte-identical response body.
func TestBreakerRoutesSequential(t *testing.T) {
	cfg := testConfig()
	cfg.breakerTrips = 1
	cfg.plan = faultinject.New().Arm(faultinject.PanicLookup, 1)
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "brk"}
	resp, body1 := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted request: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-M2cd-Fellback") != "1" {
		t.Fatal("faulted compile should report the sequential fallback")
	}
	resp, body2 := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breaker-open request: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-M2cd-Path"); got != "sequential" {
		t.Fatalf("X-M2cd-Path = %q, want sequential (breaker open)", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("sequential body differs from concurrent body\n%s\nvs\n%s", body1, body2)
	}
	// Another client is unaffected.
	other := req
	other.Client = "other"
	resp, _ = post(t, ts, "/compile", other)
	if got := resp.Header.Get("X-M2cd-Path"); got != "concurrent" {
		t.Fatalf("other client's path = %q, want concurrent", got)
	}
	if snap := s.snapshot(); snap.BreakerOpens != 1 || snap.SequentialServed != 1 {
		t.Fatalf("breaker counters: opens=%d seq=%d, want 1/1", snap.BreakerOpens, snap.SequentialServed)
	}
}

// TestBreakerHalfOpenRecovers verifies a cooled-down breaker lets a
// clean probe close it again.
func TestBreakerHalfOpenRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.breakerTrips = 1
	cfg.breakerCooldown = time.Millisecond
	cfg.plan = faultinject.New().Arm(faultinject.PanicLookup, 1)
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := compileRequest{Module: "Demo", Sources: exampleSources(t), Client: "half"}
	post(t, ts, "/compile", req) // faults; breaker opens
	time.Sleep(5 * time.Millisecond)
	resp, _ := post(t, ts, "/compile", req) // half-open probe, clean
	if got := resp.Header.Get("X-M2cd-Path"); got != "concurrent" {
		t.Fatalf("post-cooldown path = %q, want concurrent probe", got)
	}
	resp, _ = post(t, ts, "/compile", req)
	if got := resp.Header.Get("X-M2cd-Path"); got != "concurrent" {
		t.Fatalf("post-probe path = %q, want concurrent (breaker closed)", got)
	}
}

// TestDrainFlow checks the drain state machine: healthz stays 200 but
// reports draining, readyz flips to 503, and admission answers 503.
func TestDrainFlow(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz before drain: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("readyz before drain: %d %q", code, body)
	}

	s.startDrain()
	s.startDrain() // idempotent

	if code, body := get("/healthz"); code != 200 || body != "draining\n" {
		t.Fatalf("healthz during drain: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("readyz during drain: %d %q", code, body)
	}
	resp, body := post(t, ts, "/compile", compileRequest{Module: "Demo", Sources: exampleSources(t)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compile during drain: status %d, want 503: %s", resp.StatusCode, body)
	}
	if snap := s.snapshot(); !snap.Draining || snap.RejectedDraining != 1 {
		t.Fatalf("drain counters: draining=%v rejected=%d", snap.Draining, snap.RejectedDraining)
	}
}

// TestChaosUnderLoad is the satellite chaos drill: overload the daemon
// (more concurrent requests than capacity) while injection points
// crash a handler, slow a request, and wound a compilation — and
// mid-run, start a drain.  Every response must be well-formed JSON,
// every 200 body byte-identical to the fault-free baseline, every 429
// carrying Retry-After, and zero requests dropped without an answer.
func TestChaosUnderLoad(t *testing.T) {
	sources := exampleSources(t)
	compileReq := compileRequest{Module: "Demo", Sources: sources}
	lintReq := compileRequest{Module: "Demo", Sources: sources}

	// Fault-free baselines, one per endpoint.
	base := newServer(testConfig())
	bts := httptest.NewServer(base.handler())
	resp, compileBase := post(t, bts, "/compile", compileReq)
	if resp.StatusCode != 200 {
		t.Fatalf("baseline compile failed: %d", resp.StatusCode)
	}
	resp, lintBase := post(t, bts, "/lint", lintReq)
	if resp.StatusCode != 200 {
		t.Fatalf("baseline lint failed: %d", resp.StatusCode)
	}
	bts.Close()

	cfg := testConfig()
	cfg.maxInflight = 2
	cfg.queueDepth = 2
	cfg.breakerTrips = 2
	cfg.slowDelay = 50 * time.Millisecond
	cfg.plan = faultinject.New().
		Arm(faultinject.PanicHandler, 3).
		Arm(faultinject.SlowRequest, 5).
		Arm(faultinject.PanicLookup, 2).
		Arm(faultinject.PanicCheck, 1)
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const (
		preDrain  = 30 // fired before the mid-run drain
		postDrain = 10 // fired after; must all observe 503
		total     = preDrain + postDrain
	)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards: statuses, malformed
	statuses := map[int]int{}
	var malformed []string
	var early atomic.Int64
	record := func(f string, args ...any) {
		mu.Lock()
		malformed = append(malformed, fmt.Sprintf(f, args...))
		mu.Unlock()
	}
	fire := func(i int) {
		defer wg.Done()
		lint := i%5 == 4
		path, want := "/compile", compileBase
		req := compileReq
		if lint {
			path, want = "/lint", lintBase
			req = lintReq
		}
		req.Client = fmt.Sprintf("chaos-%d", i%3)
		resp, body := post(t, ts, path, req)
		mu.Lock()
		statuses[resp.StatusCode]++
		mu.Unlock()
		switch resp.StatusCode {
		case http.StatusOK:
			if !bytes.Equal(body, want) {
				record("request %d (%s): 200 body differs from baseline:\n%s", i, path, body)
			}
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				record("request %d: 429 without Retry-After", i)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				record("request %d: malformed 429 body %s", i, body)
			}
		case http.StatusServiceUnavailable, http.StatusInternalServerError:
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				record("request %d: malformed %d body %s", i, resp.StatusCode, body)
			}
		default:
			record("request %d: unexpected status %d: %s", i, resp.StatusCode, body)
		}
		early.Add(1)
	}
	for i := 0; i < preDrain; i++ {
		wg.Add(1)
		go fire(i)
	}
	// Mid-run drain: wait (on observed traffic, not wall clock) until
	// the overload is demonstrably in progress, then pull the plug.
	// In-flight admitted requests must still complete correctly; the
	// post-drain wave must observe 503.
	for i := 0; early.Load() < preDrain/2; i++ {
		if i > 10000 {
			t.Fatal("chaos load never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	s.startDrain()
	for i := preDrain; i < total; i++ {
		wg.Add(1)
		go fire(i)
	}
	wg.Wait()

	if len(malformed) > 0 {
		t.Fatalf("%d malformed responses under chaos:\n%s", len(malformed), strings.Join(malformed, "\n"))
	}
	var answered int
	for _, n := range statuses {
		answered += n
	}
	if answered != total {
		t.Fatalf("answered %d of %d requests; the rest were dropped", answered, total)
	}
	t.Logf("chaos statuses: %v", statuses)
	if statuses[http.StatusOK] == 0 {
		t.Fatal("chaos run served zero successful responses; the drill proved nothing")
	}

	// The final snapshot is well-formed and internally consistent.
	snap := s.snapshot()
	if snap.HandlerPanics != 1 {
		t.Fatalf("handler_panics = %d, want exactly the one injected", snap.HandlerPanics)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := testConfig()
	if err := ok.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := ok
	bad.stallTimeout = -time.Second
	if err := bad.validate(); err == nil || !strings.Contains(err.Error(), "stall-timeout") {
		t.Fatalf("negative stall timeout not rejected clearly: %v", err)
	}
	for name, mutate := range map[string]func(*config){
		"workers":       func(c *config) { c.workers = 0 },
		"inflight":      func(c *config) { c.maxInflight = 0 },
		"queue":         func(c *config) { c.queueDepth = -1 },
		"deadline":      func(c *config) { c.defaultDeadline = 0 },
		"deadline>max":  func(c *config) { c.defaultDeadline = 2 * c.maxDeadline },
		"drain":         func(c *config) { c.drainTimeout = 0 },
		"breaker-trips": func(c *config) { c.breakerTrips = 0 },
		"iface-cap":     func(c *config) { c.ifaceCap = -1 },
		"stream-cap":    func(c *config) { c.streamCap = -1 },
	} {
		c := ok
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestParseInject(t *testing.T) {
	plan, err := parseInject("")
	if err != nil || plan != nil {
		t.Fatalf("empty spec: plan=%v err=%v", plan, err)
	}
	plan, err = parseInject("panic-handler:3, slow-request:1")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trigger(faultinject.PanicHandler) != 3 || plan.Trigger(faultinject.SlowRequest) != 1 {
		t.Fatal("parsed plan misarmed")
	}
	for _, bad := range []string{"panic-handler", "nosuch:1", "panic-handler:0", "panic-handler:x"} {
		if _, err := parseInject(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
