// Per-client connection-level rate limiting: a token bucket per
// client identity, refilled continuously at -rate-limit tokens/sec up
// to -rate-burst.  A request that finds no token is shed with 429 and
// a Retry-After telling the client when the next token arrives — the
// same shape as the admission path's EWMA-derived estimate, so client
// backoff logic handles both identically.
package main

import (
	"sync"
	"time"
)

// limiterSet holds one token bucket per client identity.
type limiterSet struct {
	mu    sync.Mutex // guards: m and every bucket inside it
	rate  float64    // tokens per second; <= 0 disables the limiter
	burst float64
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiterSet(rate float64, burst int) *limiterSet {
	if burst < 1 {
		burst = 1
	}
	return &limiterSet{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// allow takes one token from the client's bucket.  When empty it
// reports the wait until the next token refills — the 429's
// Retry-After.  A new client starts with a full burst.
func (l *limiterSet) allow(client string, now time.Time) (ok bool, retry time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.m[client]
	if b == nil {
		if len(l.m) >= maxLimiterClients {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.m[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// maxLimiterClients bounds the bucket map; past it, pruneLocked drops
// buckets that have refilled to a full burst (a full bucket and a new
// client behave identically, so dropping one loses nothing).
const maxLimiterClients = 4096

func (l *limiterSet) pruneLocked(now time.Time) {
	for client, b := range l.m {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.m, client)
		}
	}
}
