// m2cd's server: admission control, deadlines, per-client circuit
// breakers, and the HTTP surface.
//
// The daemon multiplexes many concurrent compile/lint requests onto
// one process-wide interface cache and a bounded pool of in-flight
// compilations.  Robustness is the organising principle:
//
//   - Admission control: at most maxInflight compilations run at once
//     (a semaphore), at most queueDepth more may wait for a slot.
//     Beyond that the daemon sheds load with 429 + Retry-After derived
//     from the observed service time, instead of queueing unboundedly.
//   - Deadlines: every request carries a deadline (defaulted and
//     capped by the server).  Its context's Done channel is passed to
//     the compiler as Options.Cancel, so an expired request releases
//     its Supervisor slots and cache leaderships promptly instead of
//     finishing work nobody will read.
//   - Circuit breaker: a client whose requests keep faulting the
//     concurrent pipeline is routed to the sequential compiler
//     (slower, byte-identical output) until a cooldown passes, keeping
//     one pathological workload from thrashing the shared pool.
//   - Graceful drain: SIGTERM stops admission (readyz flips to 503),
//     in-flight requests finish under the drain deadline, and the
//     final metrics snapshot is flushed before exit.
//
// Response bodies are a pure function of the request: routing
// metadata (concurrent vs sequential, stream counts, fallback) rides
// in X-M2cd-* headers so that the body of any two successful responses
// to the same request is byte-identical — across fault injection,
// breaker state, and scheduling. The chaos tests rely on this.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"m2cc"
	"m2cc/internal/faultinject"
	"m2cc/internal/obs"
)

// config carries the daemon's tunables; main fills it from flags.
type config struct {
	addr            string
	workers         int
	strategy        m2cc.Strategy
	maxInflight     int
	queueDepth      int
	defaultDeadline time.Duration
	maxDeadline     time.Duration
	drainTimeout    time.Duration
	stallTimeout    time.Duration
	breakerTrips    int
	breakerCooldown time.Duration
	slowDelay       time.Duration // latency injected by an armed SlowRequest point
	ifaceCap        int           // interface-cache entry cap (0 = unbounded)
	streamCap       int           // stream-cache entry cap (0 = unbounded)
	plan            *faultinject.Plan
	metricsOut      string
	readyFile       string

	traceMode   obs.TraceMode // which admissions get a recording observer
	traceKeep   int           // LRU cap on held traces
	traceSample int           // 1-in-N sampling in sampled mode
	rateLimit   float64       // per-client tokens/sec; 0 disables
	rateBurst   int           // per-client token-bucket burst
	livePeriod  time.Duration // SSE frame period (0 = 1s); tests shorten it
}

// validate rejects nonsensical knob settings with a clear error
// before the daemon binds a socket.
func (c *config) validate() error {
	if c.workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", c.workers)
	}
	if c.maxInflight < 1 {
		return fmt.Errorf("-max-inflight must be >= 1 (got %d)", c.maxInflight)
	}
	if c.queueDepth < 0 {
		return fmt.Errorf("-queue must be >= 0 (got %d)", c.queueDepth)
	}
	if c.stallTimeout < 0 {
		return fmt.Errorf("-stall-timeout must be >= 0 (got %v); the daemon never waits forever on a foreign cache leader", c.stallTimeout)
	}
	if c.defaultDeadline <= 0 || c.maxDeadline <= 0 {
		return fmt.Errorf("-deadline and -max-deadline must be positive")
	}
	if c.defaultDeadline > c.maxDeadline {
		return fmt.Errorf("-deadline (%v) must not exceed -max-deadline (%v)", c.defaultDeadline, c.maxDeadline)
	}
	if c.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive")
	}
	if c.breakerTrips < 1 {
		return fmt.Errorf("-breaker-trips must be >= 1 (got %d)", c.breakerTrips)
	}
	if c.ifaceCap < 0 {
		return fmt.Errorf("-iface-cap must be >= 0 (got %d); 0 means unbounded", c.ifaceCap)
	}
	if c.streamCap < 0 {
		return fmt.Errorf("-stream-cap must be >= 0 (got %d); 0 means unbounded", c.streamCap)
	}
	if c.traceMode != obs.TraceOff {
		// The knobs only bind when tracing is on; a zero-value config
		// (tracing off) stays valid.
		if c.traceKeep < 1 {
			return fmt.Errorf("-trace-keep must be >= 1 (got %d)", c.traceKeep)
		}
		if c.traceSample < 1 {
			return fmt.Errorf("-trace-sample must be >= 1 (got %d); 1 traces every admission", c.traceSample)
		}
	}
	if c.rateLimit < 0 {
		return fmt.Errorf("-rate-limit must be >= 0 (got %g); 0 disables the limiter", c.rateLimit)
	}
	if c.rateLimit > 0 && c.rateBurst < 1 {
		return fmt.Errorf("-rate-burst must be >= 1 (got %d)", c.rateBurst)
	}
	if c.livePeriod < 0 {
		return fmt.Errorf("-live-period must not be negative (got %v)", c.livePeriod)
	}
	return nil
}

// server is the daemon's shared state: one interface cache, one
// admission semaphore, one breaker registry, one metrics ledger.
type server struct {
	cfg    config
	cache  *m2cc.Cache
	scache *m2cc.StreamCache // process-wide incremental stream cache
	start  time.Time

	sem     chan struct{} // guards: in-flight capacity — holds maxInflight tokens; a compile runs only while holding one
	drainCh chan struct{} // guards: admission shutdown — closed by startDrain; selects racing on sem abort here

	waiting  atomic.Int64 // requests admitted past the capacity check, not yet holding a slot (includes running)
	draining atomic.Bool
	drainOne sync.Once

	breakers breakerSet
	met      metrics

	traces *obs.TraceStore // per-request trace plane (/debug/trace)
	tel    *telemetry      // histograms + rolling windows
	limits *limiterSet     // per-client token buckets

	logw  io.Writer  // structured request-log sink; nil disables logging
	logMu sync.Mutex // guards: interleaving of request-log lines on logw
}

func newServer(cfg config) *server {
	s := &server{
		cfg:     cfg,
		cache:   m2cc.NewCache(),
		scache:  m2cc.NewStreamCache(cfg.streamCap),
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.maxInflight),
		drainCh: make(chan struct{}),
	}
	s.cache.SetLimit(cfg.ifaceCap)
	s.breakers.trips = cfg.breakerTrips
	s.breakers.cooldown = cfg.breakerCooldown
	s.breakers.m = make(map[string]*breakerState)
	s.met.byStatus = make(map[int]int64)
	s.met.lintFindings = make(map[string]int64)
	s.traces = obs.NewTraceStore(cfg.traceMode, cfg.traceSample, cfg.traceKeep)
	s.tel = newTelemetry()
	s.limits = newLimiterSet(cfg.rateLimit, cfg.rateBurst)
	return s
}

// handler builds the daemon's routing table.  Every compile/lint
// handler is wrapped in recoverPanic so a crashed handler goroutine
// becomes a well-formed 500 instead of a dropped connection.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.instrumented(s.recoverPanic(func(w http.ResponseWriter, r *http.Request) {
		s.handleCompile(w, r, false)
	})))
	mux.HandleFunc("/lint", s.instrumented(s.recoverPanic(func(w http.ResponseWriter, r *http.Request) {
		s.handleCompile(w, r, true)
	})))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTraceIndex)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /debug/trace/{id}/profile", s.handleTraceProfile)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /debug/live", s.handleLive)
	return mux
}

// startDrain flips the daemon into draining: admission stops (new and
// queued requests get 503), readyz reports 503, healthz reports
// "draining".  Idempotent; in-flight requests are unaffected — the
// caller is responsible for http.Server.Shutdown, which waits for
// them.
func (s *server) startDrain() {
	s.drainOne.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// ---- request/response schema ----

type srcFile struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "def" or "mod"
	Text string `json:"text"`
}

type compileRequest struct {
	Module     string    `json:"module"`
	Sources    []srcFile `json:"sources"`
	Workers    int       `json:"workers,omitempty"`
	Strategy   string    `json:"strategy,omitempty"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	Trace      bool      `json:"trace,omitempty"`
	Client     string    `json:"client,omitempty"`
}

// compileResponse is deliberately a pure function of the request:
// listing, diagnostics, and findings are byte-identical however the
// request was served (concurrent, sequential-breaker, fallback).
// Schedule-dependent metadata travels in X-M2cd-* headers instead.
type compileResponse struct {
	Module   string          `json:"module"`
	OK       bool            `json:"ok"`
	Listing  string          `json:"listing,omitempty"`
	Diags    string          `json:"diags,omitempty"`
	Findings json.RawMessage `json:"findings,omitempty"`
	Trace    json.RawMessage `json:"trace,omitempty"`
}

type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ---- handlers ----

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.writePrometheus(w)
		return
	}
	s.writeJSON(w, http.StatusOK, s.snapshot())
}

// recoverPanic converts a handler panic (including an armed
// PanicHandler injection) into a well-formed 500 response.  Admission
// slots are released by the handler's own defers as the panic unwinds,
// so a crashed request never leaks capacity.
func (s *server) recoverPanic(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.mu.Lock()
				s.met.handlerPanics++
				s.met.mu.Unlock()
				s.writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal: handler panic: %v", rec), 0)
			}
		}()
		h(w, r)
	}
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request, lint bool) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required", 0)
		return
	}
	var req compileRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
		return
	}
	if req.Module == "" || len(req.Sources) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad request: module and sources are required", 0)
		return
	}
	loader := m2cc.NewMapLoader()
	for _, f := range req.Sources {
		var kind m2cc.FileKind
		switch strings.ToLower(f.Kind) {
		case "def":
			kind = m2cc.Def
		case "mod":
			kind = m2cc.Impl
		default:
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad request: source %q has unknown kind %q (want def or mod)", f.Name, f.Kind), 0)
			return
		}
		loader.Add(f.Name, kind, f.Text)
	}
	strategy := s.cfg.strategy
	if req.Strategy != "" {
		var err error
		if strategy, err = m2cc.ParseStrategy(req.Strategy); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
			return
		}
	}
	workers := s.cfg.workers
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}

	// Deadline: requested, defaulted, and capped.  The context carries
	// it into the compiler as a cancellation channel.  A negative
	// deadline is a client bug, not a request for "no deadline" — were
	// it silently defaulted the client would believe its bound was
	// honored (mirrors m2c's -stall-timeout rejection).
	if req.DeadlineMS < 0 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad request: deadline_ms must not be negative (got %d); a negative deadline would never expire", req.DeadlineMS), 0)
		return
	}
	deadline := s.cfg.defaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.maxDeadline {
		deadline = s.cfg.maxDeadline
	}
	// The request context already propagates client disconnect; the
	// timeout adds the service deadline.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Client identity, resolved before admission: the rate limiter and
	// the circuit breaker key on it, and the request log reports it even
	// for shed requests.
	client := req.Client
	if client == "" {
		client = r.Header.Get("X-Client")
	}
	if client == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	if rec, ok := w.(*statusRecorder); ok {
		rec.client = client
	}

	// ---- admission ----
	if s.draining.Load() {
		s.met.mu.Lock()
		s.met.rejectedDraining++
		s.met.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	// Connection-level rate limit, before the shared queue: a client
	// over its budget is shed without consuming queue capacity, with a
	// Retry-After saying when its next token refills.
	if ok, retry := s.limits.allow(client, time.Now()); !ok {
		s.met.mu.Lock()
		s.met.rateLimited++
		s.met.mu.Unlock()
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("rate limited: client %q over %g req/s", client, s.cfg.rateLimit), retry)
		return
	}
	if n := s.waiting.Add(1); n > int64(s.cfg.maxInflight+s.cfg.queueDepth) {
		s.waiting.Add(-1)
		retry := s.retryAfter()
		s.met.mu.Lock()
		s.met.shedQueueFull++
		s.met.mu.Unlock()
		s.writeError(w, http.StatusTooManyRequests, "overloaded: admission queue full", retry)
		return
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.met.mu.Lock()
		s.met.deadlineCanceled++
		s.met.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "deadline exceeded while queued", s.retryAfter())
		return
	case <-s.drainCh:
		s.met.mu.Lock()
		s.met.rejectedDraining++
		s.met.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	defer func() { <-s.sem }()
	s.met.mu.Lock()
	s.met.admitted++
	s.met.mu.Unlock()

	// Telemetry at the admission edge: every admitted request gets a
	// trace ID (client-chosen via X-M2cd-Trace or generated); sampling
	// decides whether an Observer records it.  The ID rides back in the
	// response header — never the body, which stays a pure function of
	// the request.  The instrumented middleware finishes the entry on
	// every exit path, including panics unwinding through this frame.
	traceID, tentry := s.traces.Admit(r.Header.Get("X-M2cd-Trace"))
	if traceID != "" {
		w.Header().Set("X-M2cd-Trace", traceID)
	}
	occupied := len(s.sem)
	queued := int(s.waiting.Load()) - occupied
	if queued < 0 {
		queued = 0
	}
	s.tel.observeAdmission(queued, occupied)

	// Fault-injection points, post-admission: the deferred slot
	// release above must survive both.
	s.cfg.plan.Panic(faultinject.PanicHandler, r.URL.Path)
	if s.cfg.plan.Hit(faultinject.SlowRequest) && s.cfg.slowDelay > 0 {
		t := time.NewTimer(s.cfg.slowDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	// ---- service ----
	began := time.Now()
	if s.breakers.sequential(client, time.Now()) {
		s.serveSequential(w, req, loader, lint)
		s.observeService(time.Since(began))
		return
	}

	opts := m2cc.Options{
		Workers:      workers,
		Strategy:     strategy,
		Cache:        s.cache,
		StreamCache:  s.scache,
		StallTimeout: s.cfg.stallTimeout,
		Check:        lint,
		FaultPlan:    s.cfg.plan,
		Cancel:       ctx.Done(),
	}
	// One observer serves both consumers: the stored trace entry (when
	// this admission was sampled) and the response's inline trace (when
	// the client asked for one).  Sharing it keeps the recording cost to
	// a single hook path.
	var observer *m2cc.Observer
	if tentry != nil {
		observer = tentry.Obs
	} else if req.Trace {
		observer = m2cc.NewObserver()
	}
	if observer != nil {
		opts.Obs = observer
	}
	res := m2cc.Compile(req.Module, loader, opts)
	s.observeService(time.Since(began))

	if res.Canceled {
		s.met.mu.Lock()
		s.met.deadlineCanceled++
		s.met.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "deadline exceeded", s.retryAfter())
		return
	}
	s.met.mu.Lock()
	s.met.completed++
	if res.Faulted {
		s.met.compileFaults++
	}
	s.met.mu.Unlock()
	if s.breakers.record(client, res.Faulted, time.Now()) {
		s.met.mu.Lock()
		s.met.breakerOpens++
		s.met.mu.Unlock()
	}

	resp := compileResponse{
		Module: req.Module,
		OK:     !res.Failed(),
		Diags:  res.Diags.String(),
	}
	if res.Object != nil && !res.Failed() && !lint {
		resp.Listing = res.Object.Listing()
	}
	if lint {
		var buf bytes.Buffer
		if err := m2cc.WriteFindingsJSON(&buf, res.Findings); err != nil {
			s.writeError(w, http.StatusInternalServerError, "internal: encode findings: "+err.Error(), 0)
			return
		}
		resp.Findings = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		if hdr := s.countFindings(res.Findings); hdr != "" {
			w.Header().Set("X-M2cd-Findings", hdr)
		}
	}
	// The inline trace is gated on the *client's* request alone — a
	// server-side sampling decision must never change the body, or two
	// identical requests would stop being byte-identical.
	if req.Trace && observer != nil {
		var buf bytes.Buffer
		if err := observer.WriteChromeTrace(&buf); err == nil {
			resp.Trace = json.RawMessage(buf.Bytes())
		}
	}
	w.Header().Set("X-M2cd-Path", "concurrent")
	w.Header().Set("X-M2cd-Streams", strconv.Itoa(res.Streams))
	if res.StreamCache != nil {
		// Schedule-independent cache traffic rides in headers like the
		// rest of the routing metadata: the body stays a pure function
		// of the request, warm or cold.
		w.Header().Set("X-M2cd-Stream-Hits", strconv.Itoa(res.StreamCache.Hits))
		w.Header().Set("X-M2cd-Stream-Misses", strconv.Itoa(res.StreamCache.Misses))
	}
	if res.FellBack {
		w.Header().Set("X-M2cd-Fellback", "1")
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// serveSequential answers a breaker-tripped client through the
// sequential compiler: slower, no concurrency to fault, byte-identical
// listing and diagnostics.
func (s *server) serveSequential(w http.ResponseWriter, req compileRequest, loader m2cc.Loader, lint bool) {
	s.met.mu.Lock()
	s.met.sequentialServed++
	s.met.completed++
	s.met.mu.Unlock()
	sres := m2cc.CompileSequentialCached(req.Module, loader, s.cache)
	resp := compileResponse{
		Module: req.Module,
		OK:     !sres.Failed(),
		Diags:  sres.Diags.String(),
	}
	if sres.Object != nil && !sres.Failed() && !lint {
		resp.Listing = sres.Object.Listing()
	}
	if lint {
		findings := m2cc.Lint(req.Module, loader)
		var buf bytes.Buffer
		if err := m2cc.WriteFindingsJSON(&buf, findings); err != nil {
			s.writeError(w, http.StatusInternalServerError, "internal: encode findings: "+err.Error(), 0)
			return
		}
		resp.Findings = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		if hdr := s.countFindings(findings); hdr != "" {
			w.Header().Set("X-M2cd-Findings", hdr)
		}
	}
	w.Header().Set("X-M2cd-Path", "sequential")
	s.writeJSON(w, http.StatusOK, resp)
}

// ---- response plumbing ----

// writeJSON marshals v fully before touching the ResponseWriter, so a
// response is either complete or absent — never truncated JSON.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.countStatus(status)
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "internal: encode response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)+1))
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}

// writeError emits a JSON error body; retry > 0 adds Retry-After (in
// whole seconds, floored at 1) plus the precise retry_after_ms field.
func (s *server) writeError(w http.ResponseWriter, status int, msg string, retry time.Duration) {
	e := errorResponse{Error: msg}
	if retry > 0 {
		secs := int64((retry + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		e.RetryAfterMS = retry.Milliseconds()
	}
	s.writeJSON(w, status, e)
}

// ---- metrics ----

type metrics struct {
	mu               sync.Mutex // guards: every field below
	admitted         int64
	completed        int64
	shedQueueFull    int64
	rejectedDraining int64
	deadlineCanceled int64
	handlerPanics    int64
	compileFaults    int64
	sequentialServed int64
	breakerOpens     int64
	rateLimited      int64
	byStatus         map[int]int64
	lintFindings     map[string]int64 // finding-family code -> total reported
	ewmaMS           float64 // exponentially weighted service time
}

// countFindings folds one lint report into the per-family counters and
// returns the X-M2cd-Findings header value: sorted family=count pairs
// (e.g. "conc-guard=2,uninit=1"), empty when the report is clean.  Like
// the other X-M2cd-* headers this is routing/telemetry metadata — the
// response body stays a pure function of the request.
func (s *server) countFindings(findings []m2cc.Finding) string {
	if len(findings) == 0 {
		return ""
	}
	perFamily := map[string]int64{}
	for _, f := range findings {
		code := f.Code
		if code == "" {
			code = "uncoded"
		}
		perFamily[code]++
	}
	s.met.mu.Lock()
	for code, n := range perFamily {
		s.met.lintFindings[code] += n
	}
	s.met.mu.Unlock()
	codes := make([]string, 0, len(perFamily))
	for code := range perFamily {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	var b strings.Builder
	for i, code := range codes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", code, perFamily[code])
	}
	return b.String()
}

func (s *server) countStatus(code int) {
	s.met.mu.Lock()
	s.met.byStatus[code]++
	s.met.mu.Unlock()
}

// observeService folds one completed request's service time into the
// EWMA that Retry-After estimates are derived from.
func (s *server) observeService(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.met.mu.Lock()
	if s.met.ewmaMS == 0 {
		s.met.ewmaMS = ms
	} else {
		const alpha = 0.2
		s.met.ewmaMS = alpha*ms + (1-alpha)*s.met.ewmaMS
	}
	s.met.mu.Unlock()
}

// retryAfter estimates when a shed client should retry: the observed
// service time scaled by how many service turns the backlog represents.
func (s *server) retryAfter() time.Duration {
	s.met.mu.Lock()
	ewma := s.met.ewmaMS
	s.met.mu.Unlock()
	if ewma <= 0 {
		ewma = 250 // no completions yet; a deliberate guess
	}
	turns := float64(s.waiting.Load())/float64(s.cfg.maxInflight) + 1
	d := time.Duration(ewma*turns) * time.Millisecond
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// metricsSnapshot is the /metrics response and the drain-time flush.
type metricsSnapshot struct {
	UptimeMS         int64                 `json:"uptime_ms"`
	Draining         bool                  `json:"draining"`
	Waiting          int64                 `json:"waiting"`
	Admitted         int64                 `json:"admitted"`
	Completed        int64                 `json:"completed"`
	ShedQueueFull    int64                 `json:"shed_queue_full"`
	RejectedDraining int64                 `json:"rejected_draining"`
	DeadlineCanceled int64                 `json:"deadline_canceled"`
	HandlerPanics    int64                 `json:"handler_panics"`
	CompileFaults    int64                 `json:"compile_faults"`
	SequentialServed int64                 `json:"sequential_served"`
	BreakerOpens     int64                 `json:"breaker_opens"`
	RateLimited      int64                 `json:"rate_limited"`
	ByStatus         map[string]int64      `json:"by_status"`
	LintFindings     map[string]int64      `json:"lint_findings"`
	ServiceEWMAMS    float64               `json:"service_ewma_ms"`
	RetryAfterMS     int64                 `json:"retry_after_ms"`
	Cache            m2cc.CacheStats       `json:"cache"`
	StreamCache      m2cc.StreamCacheStats `json:"streamcache"`
	TraceMode        string                `json:"trace_mode"`
	TracesHeld       int                   `json:"traces_held"`
	TraceAdmitted    uint64                `json:"trace_admitted"`
}

func (s *server) snapshot() metricsSnapshot {
	retry := s.retryAfter()
	s.met.mu.Lock()
	snap := metricsSnapshot{
		UptimeMS:         time.Since(s.start).Milliseconds(),
		Draining:         s.draining.Load(),
		Waiting:          s.waiting.Load(),
		Admitted:         s.met.admitted,
		Completed:        s.met.completed,
		ShedQueueFull:    s.met.shedQueueFull,
		RejectedDraining: s.met.rejectedDraining,
		DeadlineCanceled: s.met.deadlineCanceled,
		HandlerPanics:    s.met.handlerPanics,
		CompileFaults:    s.met.compileFaults,
		SequentialServed: s.met.sequentialServed,
		BreakerOpens:     s.met.breakerOpens,
		RateLimited:      s.met.rateLimited,
		ByStatus:         make(map[string]int64, len(s.met.byStatus)),
		LintFindings:     make(map[string]int64, len(s.met.lintFindings)),
		ServiceEWMAMS:    s.met.ewmaMS,
		RetryAfterMS:     retry.Milliseconds(),
	}
	for code, n := range s.met.byStatus {
		snap.ByStatus[strconv.Itoa(code)] = n
	}
	for family, n := range s.met.lintFindings {
		snap.LintFindings[family] = n
	}
	s.met.mu.Unlock()
	snap.Cache = s.cache.Stats()
	snap.StreamCache = s.scache.Stats()
	snap.TraceMode = s.traces.Mode().String()
	snap.TracesHeld = s.traces.Held()
	snap.TraceAdmitted = s.traces.Admitted()
	return snap
}

// ---- per-client circuit breaker ----

// breakerSet tracks consecutive concurrent-pipeline faults per client.
// After trips consecutive faults the client's breaker opens for
// cooldown: its requests are served by the sequential compiler (same
// bytes, no shared-pool thrash).  The first post-cooldown request
// probes the concurrent path half-open — one more fault re-opens
// immediately, a clean result closes the breaker.
type breakerSet struct {
	mu       sync.Mutex // guards: m and each *breakerState inside it
	trips    int
	cooldown time.Duration
	m        map[string]*breakerState
}

type breakerState struct {
	fails     int       // consecutive faults
	openUntil time.Time // zero when closed
	halfOpen  bool      // probing after cooldown
}

// sequential reports whether this client's next request must take the
// sequential path.  A cooled-down breaker transitions to half-open and
// lets the request probe the concurrent path.
func (b *breakerSet) sequential(client string, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[client]
	if st == nil || st.openUntil.IsZero() {
		return false
	}
	if now.Before(st.openUntil) {
		return true
	}
	// Cooldown over: half-open probe.
	st.openUntil = time.Time{}
	st.halfOpen = true
	st.fails = 0
	return false
}

// record folds one concurrent-path outcome into the client's breaker
// and reports whether the breaker opened on this call.
func (b *breakerSet) record(client string, faulted bool, now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[client]
	if st == nil {
		st = &breakerState{}
		b.m[client] = st
	}
	if !faulted {
		st.fails = 0
		st.halfOpen = false
		return false
	}
	st.fails++
	if st.halfOpen || st.fails >= b.trips {
		st.openUntil = now.Add(b.cooldown)
		st.halfOpen = false
		st.fails = 0
		return true
	}
	return false
}
