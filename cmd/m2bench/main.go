// Command m2bench regenerates the paper's evaluation (§4): every table
// and figure, plus the quantified claims from the text.
//
//	m2bench                 # everything, paper-sized workload
//	m2bench -scale 0.25     # quicker, shrunken bodies
//	m2bench -table2 -fig7   # selected experiments only
//	m2bench -ifacecache -json BENCH_ifacecache.json
//	                        # interface-cache cold/warm batch benchmark,
//	                        # machine-readable result written to the file
//	m2bench -obs -json BENCH_obs.json
//	                        # observability-layer overhead benchmark
//	                        # (instrumentation budget: <5%)
//	m2bench -profile -json BENCH_profile.json
//	                        # critical-path profiler overhead benchmark
//	                        # (budget: <5% on top of -obs, replay error <1%)
//
// Benchmark flags (-ifacecache, -obs, -profile) compose with section
// flags: each requested piece runs in turn.  -json names the file for
// the one selected benchmark's result.
//
// Hardware substitution: the paper measured wall-clock speedups on an
// 8-CPU DEC Firefly; here speedups come from a deterministic
// discrete-event simulation of the same Supervisor scheduling policy
// over schedule-independent compilation traces (see DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"m2cc/internal/bench"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "workload body scale in (0,1]")
		seed     = flag.Int64("seed", 1992, "workload seed")
		procs    = flag.Int("procs", 8, "simulated processor sweep upper bound")
		runs     = flag.Int("runs", 3, "wall-clock repetitions for the overhead experiment")
		table1   = flag.Bool("table1", false, "Table 1: test suite description")
		table2   = flag.Bool("table2", false, "Table 2: identifier lookup statistics")
		table3   = flag.Bool("table3", false, "Table 3: speedup summary")
		fig1     = flag.Bool("fig1", false, "Figure 1: suite self-relative speedup")
		fig2     = flag.Bool("fig2", false, "Figure 2: best-case speedup")
		fig3     = flag.Bool("fig3", false, "Figure 3: speedup by quartiles")
		fig4     = flag.Bool("fig4", false, "Figure 4: WatchTool snapshot")
		fig7     = flag.Bool("fig7", false, "Figure 7: processor activity view")
		overhead = flag.Bool("overhead", false, "§4.2: 1-processor overhead vs sequential compiler")
		dky      = flag.Bool("dky", false, "§2.2: DKY strategy ablation")
		headersA = flag.Bool("headers", false, "§2.4: heading-sharing ablation")
		ordering = flag.Bool("longshort", false, "§2.3.4: long-before-short ordering ablation")
		boost    = flag.Bool("boost", false, "§2.3.4: DKY-resolver preference ablation")
		ifcache  = flag.Bool("ifacecache", false, "interface-cache benchmark: cold vs warm batch compilation")
		incrB    = flag.Bool("incr", false, "incremental-recompilation benchmark: cold build vs one-procedure-edit warm rebuild")
		obsBench = flag.Bool("obs", false, "observability-layer overhead benchmark (budget: <5%)")
		profB    = flag.Bool("profile", false, "critical-path profiler overhead benchmark (budget: <5% on top of -obs)")
		schedB   = flag.Bool("sched", false, "scheduler benchmark: steal vs global-queue dispatch, allocs, blocked-time blame")
		baseline = flag.String("baseline", "", "with -sched: before-snapshot JSON (e.g. BENCH_sched_before.json) to compare against")
		jsonOut  = flag.String("json", "", "with -ifacecache, -obs, -profile or -sched: also write the result as JSON to this file")
		workers  = flag.Int("workers", 8, "worker slots per compilation in the benchmark flags")
	)
	flag.Parse()

	sections := *table1 || *table2 || *table3 || *fig1 || *fig2 || *fig3 || *fig4 ||
		*fig7 || *overhead || *dky || *headersA || *ordering || *boost
	benchCount := 0
	for _, b := range []bool{*ifcache, *incrB, *obsBench, *profB, *schedB} {
		if b {
			benchCount++
		}
	}
	if *jsonOut != "" && benchCount != 1 {
		fmt.Fprintln(os.Stderr, "-json names one result file: pass exactly one of -ifacecache, -incr, -obs, -profile or -sched")
		os.Exit(2)
	}

	// writeJSON saves a benchmark result machine-readably when -json
	// names a file.
	writeJSON := func(r any) {
		if *jsonOut == "" {
			return
		}
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("result written to %s\n", *jsonOut)
	}

	if *ifcache {
		r, err := bench.CacheBench(bench.Config{Seed: *seed, Scale: *scale}, *runs, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(r)
		writeJSON(r)
	}
	if *incrB {
		r, err := bench.IncrBench(bench.Config{Seed: *seed, Scale: *scale}, *runs, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(r)
		writeJSON(r)
		if r.Speedup < bench.IncrBenchMinSpeedup {
			fmt.Fprintf(os.Stderr, "warm rebuild speedup %.2fx is below the %.1fx floor\n",
				r.Speedup, bench.IncrBenchMinSpeedup)
			os.Exit(1)
		}
	}
	if *obsBench {
		r, err := bench.ObsBench(bench.Config{Seed: *seed, Scale: *scale}, *runs, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(r)
		writeJSON(r)
		if r.Serve != nil && r.Serve.OverheadPct > bench.ServeObsMaxOverheadPct {
			fmt.Fprintf(os.Stderr, "serve-mode sampled tracing overhead %.1f%% exceeds the %.0f%% budget\n",
				r.Serve.OverheadPct, bench.ServeObsMaxOverheadPct)
			os.Exit(1)
		}
	}
	if *profB {
		r, err := bench.ProfileBench(bench.Config{Seed: *seed, Scale: *scale}, *runs, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(r)
		writeJSON(r)
	}
	if *schedB {
		r, err := bench.SchedBench(bench.Config{Seed: *seed, Scale: *scale}, *runs, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *baseline != "" {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			var before bench.SchedBenchResult
			if err := json.Unmarshal(data, &before); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", *baseline, err)
				os.Exit(1)
			}
			r.Compare(before)
		}
		fmt.Print(r)
		writeJSON(r)
	}

	// A benchmark-only invocation skips the (expensive) section harness;
	// section flags alongside a benchmark still render their sections.
	all := !sections && benchCount == 0
	if !all && !sections {
		return
	}

	start := time.Now()
	h, err := bench.New(bench.Config{Seed: *seed, Scale: *scale, MaxProcs: *procs})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("workload generated and traced in %v (seed %d, scale %g)\n\n",
		time.Since(start).Round(time.Millisecond), *seed, *scale)

	section := func(enabled bool, text func() string) {
		if all || enabled {
			fmt.Println(text())
		}
	}
	section(*table1, h.Table1)
	section(*fig1, h.Figure1)
	section(*fig2, h.Figure2)
	section(*fig3, h.Figure3)
	section(*fig4, h.Figure4)
	section(*table2, func() string { return h.RenderTable2(*procs) })
	section(*table3, h.Table3)
	section(*fig7, h.Figure7)
	section(*dky, func() string { return h.RenderStrategyAblation(*procs) })

	if all || *headersA {
		ratio, err := h.HeaderAblation(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Heading-sharing ablation (§2.4): alternative 3 / alternative 1 = %.3f at P=%d\n", ratio, *procs)
		fmt.Printf("paper: alternative 3 was about 3%% slower due to redundant effort\n\n")
	}
	if all || *ordering {
		ratio := h.OrderingAblation(*procs)
		fmt.Printf("Task-ordering ablation (§2.3.4): without long-before-short / with = %.3f at P=%d\n", ratio, *procs)
		fmt.Printf("paper: long procedures are scheduled first to avoid a sequential tail\n\n")
	}
	if all || *boost {
		ratio := h.BoostAblation(*procs)
		fmt.Printf("DKY-resolver preference ablation (§2.3.4): without boost / with = %.3f at P=%d\n", ratio, *procs)
		fmt.Printf("paper: a blocked worker's slot preferentially runs the task that resolves the blockage\n\n")
	}
	if all || *overhead {
		ov, err := h.Overhead(*runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Single-processor overhead (§4.2): sequential %v, concurrent@1 %v => %+.1f%% wall clock\n",
			ov.SeqWall.Round(time.Millisecond), ov.Conc1.Round(time.Millisecond), ov.Percent)
		fmt.Printf("deterministic work-unit comparison: %+.1f%% (paper: concurrent was 4.3%% slower on one processor)\n",
			ov.UnitsPct)
	}
}
