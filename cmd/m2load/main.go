// Command m2load is the load generator paired with the m2cd daemon:
// it drives concurrent compile/lint requests at a running daemon and
// reports throughput, latency percentiles, and shed/error counts.
//
// Two driving modes:
//
//   - Closed loop (default): -c workers each keep one request in
//     flight, back to back — measures the daemon's capacity under
//     sustained saturation.
//   - Open loop (-rate N): requests are launched on a fixed schedule
//     of N per second regardless of completions — measures behavior
//     under an arrival rate the daemon cannot push back on, which is
//     where load shedding earns its keep.
//
// The run stops after -n requests (closed loop) or -duration.  The
// report is written as JSON (-out, default BENCH_serve.json) and
// summarised on stdout.
//
// With -expect-identical, every 200 response body for the same
// endpoint must be byte-identical — the daemon's correctness
// contract under load, shedding, and fault injection; mismatches are
// counted and fail the run (exit 1).
//
// Every response's X-M2cd-Trace header is recorded alongside its
// latency.  With -fetch-slowest N the generator ends the run by
// pulling the daemon's traces for the N slowest successful requests
// (when the daemon sampled them) and saving each as Perfetto JSON
// beside the report — a perf regression arrives with its evidence
// attached.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type srcFile struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Text string `json:"text"`
}

type compileRequest struct {
	Module     string    `json:"module"`
	Sources    []srcFile `json:"sources"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	Client     string    `json:"client,omitempty"`
}

// report is the BENCH_serve.json schema.
type report struct {
	Target       string           `json:"target"`
	Mode         string           `json:"mode"` // "closed" or "open"
	Concurrency  int              `json:"concurrency"`
	RatePerSec   float64          `json:"rate_per_sec,omitempty"`
	DurationMS   int64            `json:"duration_ms"`
	Sent         int64            `json:"sent"`
	OK           int64            `json:"ok"`
	Shed         int64            `json:"shed"`     // 429
	Unavailable  int64            `json:"unavail"`  // 503
	Errors       int64            `json:"errors"`   // transport and 5xx other than 503
	Mismatches   int64            `json:"mismatch"` // 200 bodies differing (-expect-identical)
	ByStatus     map[string]int64 `json:"by_status"`
	ThroughputPS float64          `json:"throughput_rps"` // successful responses per second
	Latency      latencySummary   `json:"latency_ms"`
	Slowest      []slowTrace      `json:"slowest_traces,omitempty"` // -fetch-slowest
}

// slowTrace is one of the run's slowest successful requests, with the
// daemon-side trace when it could be fetched (the daemon only holds
// traces for sampled admissions, and its LRU ring may have moved on).
type slowTrace struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
	File      string  `json:"file,omitempty"` // saved Perfetto JSON, beside the report
}

type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		target   = flag.String("addr", "127.0.0.1:8177", "m2cd address (host:port)")
		srcDir   = flag.String("src", filepath.Join("examples", "modules"), "directory of .def/.mod sources to compile")
		module   = flag.String("module", "Demo", "implementation module to request")
		endpoint = flag.String("endpoint", "/compile", "endpoint to drive: /compile or /lint")
		n        = flag.Int64("n", 200, "total requests (closed loop; 0 = until -duration)")
		c        = flag.Int("c", 8, "closed-loop concurrency / open-loop max outstanding")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
		duration = flag.Duration("duration", 30*time.Second, "maximum run time")
		deadline = flag.Int64("deadline-ms", 0, "per-request deadline forwarded to the daemon")
		clients  = flag.Int("clients", 4, "number of distinct client identities to spread requests over")
		identic  = flag.Bool("expect-identical", false, "fail if any two 200 bodies differ")
		out      = flag.String("out", "BENCH_serve.json", "report file")
		slowest  = flag.Int("fetch-slowest", 0, "after the run, fetch the daemon traces of the N slowest requests (saved beside -out)")
	)
	flag.Parse()

	sources, err := loadSources(*srcDir)
	if err != nil {
		log.Printf("m2load: %v", err)
		return 2
	}
	if *c < 1 || *clients < 1 {
		log.Printf("m2load: -c and -clients must be >= 1")
		return 2
	}
	body, err := json.Marshal(compileRequest{
		Module: *module, Sources: sources, DeadlineMS: *deadline,
	})
	if err != nil {
		log.Printf("m2load: %v", err)
		return 2
	}
	url := "http://" + *target + *endpoint

	g := &generator{
		url:      url,
		body:     body,
		clients:  *clients,
		identic:  *identic,
		byStatus: make(map[int]int64),
		client: &http.Client{
			Timeout: *duration,
			Transport: &http.Transport{
				MaxIdleConns:        *c * 2,
				MaxIdleConnsPerHost: *c * 2,
			},
		},
	}

	began := time.Now()
	if *rate > 0 {
		g.openLoop(*rate, *duration, *c)
	} else {
		g.closedLoop(*n, *duration, *c)
	}
	elapsed := time.Since(began)

	rep := g.report(*target, *rate, *c, elapsed)
	if *slowest > 0 {
		rep.Slowest = g.fetchSlowest(*target, *slowest, filepath.Dir(*out))
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Printf("m2load: %v", err)
		return 1
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Printf("m2load: %v", err)
		return 1
	}
	fmt.Printf("m2load: %d sent in %v — %d ok, %d shed, %d unavailable, %d errors (%.1f ok/s)\n",
		rep.Sent, elapsed.Round(time.Millisecond), rep.OK, rep.Shed, rep.Unavailable, rep.Errors, rep.ThroughputPS)
	fmt.Printf("m2load: latency ms p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.P999, rep.Latency.Max)
	if rep.Mismatches > 0 {
		log.Printf("m2load: %d response-body mismatches — the daemon broke its byte-identity contract", rep.Mismatches)
		return 1
	}
	if rep.OK == 0 {
		log.Printf("m2load: zero successful responses")
		return 1
	}
	return 0
}

// loadSources reads every Name.def / Name.mod under dir into request
// sources.
func loadSources(dir string) ([]srcFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var sources []srcFile
	for _, e := range entries {
		var kind string
		switch filepath.Ext(e.Name()) {
		case ".def":
			kind = "def"
		case ".mod":
			kind = "mod"
		default:
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		sources = append(sources, srcFile{Name: name, Kind: kind, Text: string(text)})
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no .def/.mod sources under %s", dir)
	}
	return sources, nil
}

// generator drives the load and accumulates results.
type generator struct {
	url     string
	body    []byte
	clients int
	identic bool
	client  *http.Client

	seq atomic.Int64 // request sequence; also spreads client identities

	mu       sync.Mutex // guards: byStatus, samples, goldBody, mismatches, errors
	byStatus map[int]int64
	samples  []sample // successful (200) requests only
	goldBody []byte   // first 200 body (-expect-identical)
	mismatch int64
	errs     int64
}

// sample is one successful request: its latency and the trace ID the
// daemon assigned it (empty before PR 9 daemons).
type sample struct {
	ms    float64
	trace string
}

// fire issues one request and records its outcome.
func (g *generator) fire() {
	i := g.seq.Add(1)
	req, err := http.NewRequest(http.MethodPost, g.url, bytes.NewReader(g.body))
	if err != nil {
		g.mu.Lock()
		g.errs++
		g.mu.Unlock()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", fmt.Sprintf("load-%d", i%int64(g.clients)))
	began := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		g.mu.Lock()
		g.errs++
		g.mu.Unlock()
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := float64(time.Since(began)) / float64(time.Millisecond)
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		g.errs++
		return
	}
	g.byStatus[resp.StatusCode]++
	if resp.StatusCode == http.StatusOK {
		g.samples = append(g.samples, sample{ms: elapsed, trace: resp.Header.Get("X-M2cd-Trace")})
		if g.identic {
			if g.goldBody == nil {
				g.goldBody = body
			} else if !bytes.Equal(g.goldBody, body) {
				g.mismatch++
			}
		}
	}
}

// closedLoop keeps c requests in flight until n requests have been
// sent or the deadline passes.
func (g *generator) closedLoop(n int64, d time.Duration, c int) {
	stop := time.Now().Add(d)
	var sent atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				if n > 0 && sent.Add(1) > n {
					return
				}
				g.fire()
			}
		}()
	}
	wg.Wait()
}

// openLoop launches requests at a fixed arrival rate for d, with at
// most maxOut outstanding (beyond that an arrival is counted as a
// local error rather than blocking the schedule — an overloaded
// client must not accidentally become a closed loop).
func (g *generator) openLoop(rate float64, d time.Duration, maxOut int) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.After(d)
	slots := make(chan struct{}, maxOut)
	var wg sync.WaitGroup
	for {
		select {
		case <-deadline:
			wg.Wait()
			return
		case <-tick.C:
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					g.fire()
				}()
			default:
				g.mu.Lock()
				g.errs++
				g.mu.Unlock()
			}
		}
	}
}

// report summarises the run.
func (g *generator) report(target string, rate float64, c int, elapsed time.Duration) report {
	g.mu.Lock()
	defer g.mu.Unlock()
	mode := "closed"
	if rate > 0 {
		mode = "open"
	}
	rep := report{
		Target:      target,
		Mode:        mode,
		Concurrency: c,
		RatePerSec:  rate,
		DurationMS:  elapsed.Milliseconds(),
		Mismatches:  g.mismatch,
		Errors:      g.errs,
		ByStatus:    make(map[string]int64, len(g.byStatus)),
	}
	ms := make([]float64, len(g.samples))
	for i, s := range g.samples {
		ms[i] = s.ms
	}
	rep.Latency = summarize(ms)
	for code, count := range g.byStatus {
		rep.ByStatus[fmt.Sprintf("%d", code)] = count
		rep.Sent += count
		switch {
		case code == http.StatusOK:
			rep.OK += count
		case code == http.StatusTooManyRequests:
			rep.Shed += count
		case code == http.StatusServiceUnavailable:
			rep.Unavailable += count
		default:
			rep.Errors += count
		}
	}
	rep.Sent += g.errs
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputPS = float64(rep.OK) / secs
	}
	return rep
}

// fetchSlowest pulls the daemon-side traces for the n slowest
// successful requests and saves each as trace-<id>.json in dir.  A
// request whose admission the daemon did not sample (404) is still
// listed — its latency is evidence even without a trace file.
func (g *generator) fetchSlowest(target string, n int, dir string) []slowTrace {
	g.mu.Lock()
	ranked := append([]sample(nil), g.samples...)
	g.mu.Unlock()
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].ms > ranked[j].ms })
	seen := make(map[string]bool)
	var out []slowTrace
	for _, s := range ranked {
		if len(out) >= n {
			break
		}
		if s.trace == "" || seen[s.trace] {
			continue
		}
		seen[s.trace] = true
		st := slowTrace{TraceID: s.trace, LatencyMS: s.ms}
		resp, err := g.client.Get("http://" + target + "/debug/trace/" + s.trace)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				path := filepath.Join(dir, "trace-"+s.trace+".json")
				if os.WriteFile(path, body, 0o644) == nil {
					st.File = path
				}
			}
		}
		out = append(out, st)
	}
	return out
}

// summarize computes the latency distribution of ms samples.
func summarize(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		Mean: sum / float64(len(sorted)),
		P50:  percentile(sorted, 0.50),
		P90:  percentile(sorted, 0.90),
		P99:  percentile(sorted, 0.99),
		P999: percentile(sorted, 0.999),
		Max:  sorted[len(sorted)-1],
	}
}

// percentile returns the p-quantile (0 < p <= 1) of sorted samples by
// the nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
