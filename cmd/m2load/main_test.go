package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..1000 ms
	}
	sum := summarize(samples)
	if sum.P50 != 500 || sum.P90 != 900 || sum.P99 != 990 || sum.P999 != 999 || sum.Max != 1000 {
		t.Fatalf("percentiles off: %+v", sum)
	}
	if sum.Mean != 500.5 {
		t.Fatalf("mean = %v, want 500.5", sum.Mean)
	}
	if got := summarize(nil); got != (latencySummary{}) {
		t.Fatalf("empty summary not zero: %+v", got)
	}
	one := summarize([]float64{42})
	if one.P50 != 42 || one.P999 != 42 || one.Max != 42 {
		t.Fatalf("single-sample summary off: %+v", one)
	}
}

// TestClosedLoopAgainstStub drives the closed loop at a canned server
// mixing 200s and 429s and checks the report classifies and counts
// every response.
func TestClosedLoopAgainstStub(t *testing.T) {
	var hits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(`{"module":"Demo","ok":true}`))
	}))
	defer stub.Close()

	g := &generator{
		url:      stub.URL + "/compile",
		body:     []byte(`{}`),
		clients:  2,
		identic:  true,
		byStatus: make(map[int]int64),
		client:   stub.Client(),
	}
	g.closedLoop(30, 10*time.Second, 4)
	rep := g.report("stub", 0, 4, 100*time.Millisecond)
	if rep.Sent != 30 {
		t.Fatalf("sent = %d, want 30", rep.Sent)
	}
	if rep.OK+rep.Shed != 30 || rep.OK == 0 || rep.Shed == 0 {
		t.Fatalf("classification off: ok=%d shed=%d", rep.OK, rep.Shed)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("identical bodies reported as mismatches: %d", rep.Mismatches)
	}
	if rep.Mode != "closed" || rep.ThroughputPS <= 0 {
		t.Fatalf("report metadata off: %+v", rep)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P50 {
		t.Fatalf("latency summary off: %+v", rep.Latency)
	}
}

// TestMismatchDetection feeds two different 200 bodies and expects the
// byte-identity check to flag it.
func TestMismatchDetection(t *testing.T) {
	var hits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%2 == 0 {
			w.Write([]byte(`{"ok":true,"v":1}`))
			return
		}
		w.Write([]byte(`{"ok":true,"v":2}`))
	}))
	defer stub.Close()
	g := &generator{
		url: stub.URL, body: []byte(`{}`), clients: 1, identic: true,
		byStatus: make(map[int]int64), client: stub.Client(),
	}
	g.closedLoop(10, 10*time.Second, 1)
	rep := g.report("stub", 0, 1, time.Second)
	if rep.Mismatches == 0 {
		t.Fatal("differing bodies not detected")
	}
}

// TestReportJSONSchema checks the BENCH_serve.json field names the
// smoke script greps for.
func TestReportJSONSchema(t *testing.T) {
	rep := report{ByStatus: map[string]int64{"200": 1}}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"target"`, `"mode"`, `"sent"`, `"ok"`, `"shed"`, `"throughput_rps"`,
		`"latency_ms"`, `"p50"`, `"p99"`, `"p999"`, `"by_status"`,
	} {
		if !strings.Contains(string(buf), field) {
			t.Errorf("report JSON missing %s: %s", field, buf)
		}
	}
}

func TestLoadSources(t *testing.T) {
	sources, err := loadSources("../../examples/modules")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, s := range sources {
		kinds[s.Kind]++
		if s.Name == "" || s.Text == "" {
			t.Fatalf("degenerate source %+v", s)
		}
		if strings.ContainsAny(s.Name, ".") {
			t.Fatalf("source name %q kept its extension", s.Name)
		}
	}
	if kinds["def"] == 0 || kinds["mod"] == 0 {
		t.Fatalf("expected both kinds, got %v", kinds)
	}
	if _, err := loadSources("no-such-dir"); err == nil {
		t.Fatal("missing dir accepted")
	}
}
