// Command m2c is the concurrent Modula-2+ compiler driver.
//
// Usage:
//
//	m2c [flags] Module
//
// The module's implementation is read from Module.mod in the include
// path; imported interfaces from <Name>.def.  By default the module is
// compiled concurrently and its object listing written to stdout.
//
//	m2c -run Main              # compile Main + imported impls, link, execute
//	                           # (one shared interface cache across the batch;
//	                           # -nocache compiles every interface per module)
//	m2c -workers 8 -dky optimistic -stats Sort
//	m2c -seq Sort              # the sequential baseline compiler
//	m2c -compare Sort          # compile both ways and diff the outputs
//	m2c -watch Sort            # WatchTool-style activity view (simulated P=workers)
//	m2c -ast Sort              # canonical source render of the parse tree
//	m2c -trace out.json Sort   # Chrome trace-event JSON of the live schedule
//	m2c -metrics Sort          # machine-readable observability metrics
//	m2c -timeline Sort         # measured per-worker activity timeline
//	m2c -profile Sort          # critical-path profile + blocked-time blame report
//	m2c -whatif Sort           # replay the measured run at P=1..workers
//	m2c -lint Sort             # concurrent static analysis; findings to stdout
//	m2c -lint-json Sort        # the same findings as a JSON array
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"m2cc"
	"m2cc/internal/ast"
	"m2cc/internal/bench"
	"m2cc/internal/ctrace"
	"m2cc/internal/diag"
	"m2cc/internal/lexer"
	"m2cc/internal/parser"
	"m2cc/internal/source"
)

func main() {
	var (
		include = flag.String("I", ".", "colon-separated include path for .def/.mod files")
		workers = flag.Int("workers", 8, "worker slots (one per simulated processor)")
		dky     = flag.String("dky", "skeptical", "DKY strategy: avoidance|pessimistic|skeptical|optimistic")
		headers = flag.Bool("reprocess-headers", false, "use §2.4 alternative 3 (child streams re-process headings)")
		seqMode = flag.Bool("seq", false, "use the sequential baseline compiler")
		compare = flag.Bool("compare", false, "compile both ways and verify identical output")
		run     = flag.Bool("run", false, "compile, link and execute the program")
		listing = flag.Bool("S", false, "print the object listing")
		stats   = flag.Bool("stats", false, "print identifier lookup statistics (Table 2)")
		watch   = flag.Bool("watch", false, "render a WatchTool-style processor activity view")
		astMode = flag.Bool("ast", false, "print the canonical source render of the parse tree")
		nocache = flag.Bool("nocache", false, "disable the shared interface cache in batch modes (-run)")
		incr    = flag.Bool("incr", false, "attach a stream cache and verify a warm rebuild replays unchanged streams byte-identically")
		quiet   = flag.Bool("q", false, "suppress the success message")
		stall   = flag.Duration("stall-timeout", m2cc.DefaultStallTimeout,
			"bound on waits for a foreign interface-cache leader before self-compiling (0 selects the default; must not be negative)")

		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON `file` of the live schedule (open in Perfetto)")
		metrics  = flag.Bool("metrics", false, "print the observability metrics snapshot as JSON")
		timeline = flag.Bool("timeline", false, "render the measured per-worker activity timeline (Figure 7 style)")

		lintF    = flag.Bool("lint", false, "run the static-analysis streams and print findings")
		lintJSON = flag.Bool("lint-json", false, "like -lint, but print findings as a JSON array")

		profileF    = flag.Bool("profile", false, "print the measured critical-path profile and blame report")
		profileJSON = flag.String("profile-json", "", "write the critical-path profile as JSON to `file`")
		whatif      = flag.Bool("whatif", false, "replay the measured run in the simulator at every processor count (what-if speedup curve)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: m2c [flags] Module")
		flag.Usage()
		os.Exit(2)
	}
	module := flag.Arg(0)
	loader := &m2cc.DirLoader{Dirs: strings.Split(*include, ":")}

	strategy, err := m2cc.ParseStrategy(*dky)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *stall < 0 {
		fmt.Fprintf(os.Stderr, "m2c: -stall-timeout must not be negative (got %v); a negative bound would wait forever on a wedged cache leader\n", *stall)
		os.Exit(2)
	}
	opts := m2cc.Options{
		Workers:      *workers,
		Strategy:     strategy,
		StallTimeout: *stall,
		// -metrics piggybacks on the Table 2 collector for its
		// per-strategy lookup section.
		CollectStats: *stats || *metrics,
	}
	if *headers {
		opts.Headers = m2cc.HeaderReprocess
	}
	if *incr {
		opts.StreamCache = m2cc.NewStreamCache(0)
	}
	if *lintF || *lintJSON {
		opts.Check = true
	}
	// printFindings writes lint findings to stdout in whichever format
	// was requested.  Findings are warnings: they never fail the build.
	printFindings := func(findings []m2cc.Finding) {
		if !*lintF && !*lintJSON {
			return
		}
		if *lintJSON {
			if err := m2cc.WriteFindingsJSON(os.Stdout, findings); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(m2cc.RenderFindings(findings))
	}
	var observer *m2cc.Observer
	if *traceOut != "" || *metrics || *timeline || *profileF || *profileJSON != "" || *whatif {
		observer = m2cc.NewObserver()
		opts.Obs = observer
	}
	// obsReport writes whichever observability views were requested; it
	// runs even for failed compilations — a trace of a failure is
	// exactly when you want one.
	obsReport := func() {
		if observer == nil {
			return
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			werr := observer.WriteChromeTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
			}
		}
		if *timeline {
			fmt.Print(observer.RenderTimeline(110))
		}
		if *metrics {
			if err := observer.WriteMetrics(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *profileF || *profileJSON != "" {
			p := m2cc.BuildProfile(observer)
			if *profileF {
				fmt.Print(p.Render(12))
			}
			if *profileJSON != "" {
				f, err := os.Create(*profileJSON)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				werr := p.WriteJSON(f)
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					fmt.Fprintln(os.Stderr, werr)
					os.Exit(1)
				}
				if !*quiet {
					fmt.Fprintf(os.Stderr, "profile written to %s\n", *profileJSON)
				}
			}
		}
		if *whatif {
			// Replay the *measured* run (not a fresh deterministic trace)
			// at every processor count: the Figure 5-style curve for what
			// actually happened, makespans in measured microseconds.
			tr := m2cc.ExportObservedTrace(observer)
			p := m2cc.BuildProfile(observer)
			base := m2cc.Simulate(tr, m2cc.SimOptions{
				Processors: 1, Strategy: strategy, ReplayWaits: true,
				LongBeforeShort: true, BoostResolver: true,
			})
			fmt.Printf("what-if replay of the measured run (%s; units = measured µs of execution):\n", strategy)
			fmt.Printf("  %3s  %12s  %8s  %s\n", "P", "makespan(ms)", "speedup", "utilization")
			for pN := 1; pN <= *workers; pN++ {
				r := base
				if pN > 1 {
					r = m2cc.Simulate(tr, m2cc.SimOptions{
						Processors: pN, Strategy: strategy, ReplayWaits: true,
						LongBeforeShort: true, BoostResolver: true,
					})
				}
				fmt.Printf("  %3d  %12.3f  %8.2f  %10.0f%%\n",
					pN, r.Makespan/1000, base.Makespan/r.Makespan, 100*r.Utilization(pN))
			}
			if p.SpeedupBound > 0 {
				fmt.Printf("  critical-path bound at P→∞: %.2fx (serial fraction %.1f%%)\n",
					p.SpeedupBound, 100*p.SerialFraction)
			}
		}
	}

	switch {
	case *astMode:
		text, err := loader.Load(module, m2cc.Impl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		files := source.NewSet()
		f := files.Add(module, source.Impl, text)
		diags := diag.NewBag(0)
		ctx := &ctrace.TaskCtx{}
		toks := lexer.ScanAll(f, ctx, diags)
		m := parser.New(parser.NewSliceSource(toks), f.Label(), ctx, diags).ParseUnit()
		os.Stderr.WriteString(diags.String())
		fmt.Print(ast.Print(m))
		if diags.HasErrors() {
			os.Exit(1)
		}
		return

	case *watch:
		res := m2cc.Compile(module, loader, m2cc.Options{Workers: 1, Strategy: strategy, Trace: true})
		os.Stderr.WriteString(res.Diags.String())
		if res.Failed() {
			os.Exit(1)
		}
		r := m2cc.Simulate(res.Trace, m2cc.SimOptions{
			Processors: *workers, Strategy: strategy,
			LongBeforeShort: true, BoostResolver: true, CollectTimeline: true,
		})
		fmt.Print(bench.RenderTimeline(r.Timeline, *workers, r.Makespan, 110))
		fmt.Println("legend: L lexical  S splitter  I importer  P parser/decl  G stmt/codegen  M merge  . idle")
		base := m2cc.Simulate(res.Trace, m2cc.SimOptions{
			Processors: 1, Strategy: strategy, LongBeforeShort: true, BoostResolver: true,
		})
		fmt.Printf("simulated speedup on %d processors: %.2f (utilization %.0f%%)\n",
			*workers, base.Makespan/r.Makespan, 100*r.Utilization(*workers))
		return

	case *run:
		// One interface cache across the whole batch: each definition
		// module is compiled once, not once per importing module.
		// Output is byte-identical either way (-nocache to verify).
		if !*nocache {
			opts.Cache = m2cc.NewCache()
		}
		prog, err := m2cc.BuildProgram(module, loader, opts)
		obsReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := m2cc.Execute(prog, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return

	case *compare:
		conc := m2cc.Compile(module, loader, opts)
		seqr := m2cc.CompileSequential(module, loader)
		if conc.Diags.String() != seqr.Diags.String() {
			fmt.Fprintf(os.Stderr, "DIAGNOSTICS DIFFER\nconcurrent:\n%s\nsequential:\n%s\n",
				conc.Diags, seqr.Diags)
			os.Exit(1)
		}
		if !conc.Failed() && conc.Object.Listing() != seqr.Object.Listing() {
			fmt.Fprintln(os.Stderr, "LISTINGS DIFFER")
			os.Exit(1)
		}
		fmt.Printf("%s: concurrent (workers=%d, %s) and sequential outputs identical\n",
			module, *workers, strategy)
		return

	case *seqMode:
		res := m2cc.CompileSequential(module, loader)
		os.Stderr.WriteString(res.Diags.String())
		if *lintF || *lintJSON {
			printFindings(m2cc.Lint(module, loader))
		}
		if res.Failed() {
			os.Exit(1)
		}
		if *listing {
			fmt.Print(res.Object.Listing())
		} else if !*quiet {
			fmt.Printf("%s: ok (sequential, %.0f work units)\n", module, res.Units)
		}
		return

	default:
		res := m2cc.Compile(module, loader, opts)
		os.Stderr.WriteString(res.Diags.String())
		obsReport()
		printFindings(res.Findings)
		if res.Failed() {
			os.Exit(1)
		}
		if *listing {
			fmt.Print(res.Object.Listing())
		} else if !*quiet && !*lintF && !*lintJSON {
			fmt.Printf("%s: ok (%d streams, workers=%d, %s)\n",
				module, res.Streams, *workers, strategy)
		}
		if *stats && res.Stats != nil {
			fmt.Print(res.Stats)
		}
		if *incr {
			// Warm rebuild against the stream cache the cold build just
			// populated: every unchanged stream must replay, and the
			// output must be byte-identical.
			warm := m2cc.Compile(module, loader, opts)
			if warm.Diags.String() != res.Diags.String() ||
				(!warm.Failed() && warm.Object.Listing() != res.Object.Listing()) {
				fmt.Fprintln(os.Stderr, "m2c: incremental rebuild diverged from the cold build")
				os.Exit(1)
			}
			if ta := warm.StreamCache; ta != nil && !*quiet {
				fmt.Printf("%s: warm rebuild: %d/%d stream probes hit (%d installed, %d covered, %d recompiled)\n",
					module, ta.Hits, ta.Probed, ta.Installed, ta.Covered, ta.Misses)
			}
		}
	}
}
