// Command m2vet runs the repository's custom concurrency-invariant
// analyzers (internal/lint) over Go source.  It speaks two dialects:
//
//   - the `go vet -vettool` protocol: invoked by the go tool with
//     -flags / -V=full for capability discovery, then once per package
//     with a vet.cfg JSON file naming the Go files to analyze.  This is
//     how CI runs it: go vet -vettool=$(pwd)/bin/m2vet ./...
//
//   - standalone: `m2vet <dir-or-file>...` walks directories (skipping
//     testdata and hidden trees), groups files by directory, and
//     analyzes each as a package.  Handy for editors and quick local
//     runs without a go vet invocation.
//
// Diagnostics go to stderr as file:line:col: message (analyzer); the
// exit status is nonzero when anything is reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"m2cc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch {
	case args[0] == "-flags":
		// The go tool asks which analyzer flags we support; none.
		fmt.Println("[]")
		return 0
	case strings.HasPrefix(args[0], "-V"):
		// Version/build-ID handshake: the go tool caches vet results
		// keyed on this line, so derive the ID from the binary itself.
		fmt.Printf("m2vet version devel buildID=%s\n", selfID())
		return 0
	case args[0] == "-h" || args[0] == "-help" || args[0] == "--help":
		usage()
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0])
	}
	return runStandalone(args)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: m2vet <dir-or-file>...  (or via go vet -vettool=m2vet)")
	fmt.Fprintln(os.Stderr, "analyzers:")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// selfID hashes the running executable so the go tool's vet cache
// invalidates whenever m2vet is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// vetConfig is the subset of the go tool's vet.cfg we consume.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg handles one `go vet` unit of work.
func runVetCfg(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m2vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "m2vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go tool expects a facts file for downstream packages even
	// though these analyzers exchange none; write it first so a
	// diagnostic exit never leaves the cache entry incomplete.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("m2vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "m2vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency package analyzed only for facts; nothing to do.
		return 0
	}
	n, err := analyze(cfg.GoFiles, cfg.ImportPath)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "m2vet: %v\n", err)
		return 1
	}
	if n > 0 {
		return 2
	}
	return 0
}

// runStandalone analyzes the named files and directory trees.
func runStandalone(args []string) int {
	pkgs := map[string][]string{} // dir -> files
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "m2vet: %v\n", err)
			return 1
		}
		if !info.IsDir() {
			pkgs[filepath.Dir(arg)] = append(pkgs[filepath.Dir(arg)], arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || name == "vendor" || name == "bin" ||
					(len(name) > 1 && name[0] == '.') {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				dir := filepath.Dir(path)
				pkgs[dir] = append(pkgs[dir], path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "m2vet: %v\n", err)
			return 1
		}
	}
	dirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	total := 0
	for _, dir := range dirs {
		files := pkgs[dir]
		sort.Strings(files)
		abs, err := filepath.Abs(dir)
		if err != nil {
			abs = dir
		}
		// The directory path stands in for the import path: the
		// path-scoped analyzers match on suffixes like internal/obs,
		// which hold for both.
		n, err := analyze(files, filepath.ToSlash(abs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "m2vet: %v\n", err)
			return 1
		}
		total += n
	}
	if total > 0 {
		return 2
	}
	return 0
}

// analyze parses the files and runs every analyzer, printing
// diagnostics to stderr; returns the diagnostic count.
func analyze(files []string, path string) (int, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		parsed = append(parsed, f)
	}
	n := 0
	err := lint.Run(fset, parsed, path, func(a *lint.Analyzer, d lint.Diagnostic) {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, a.Name)
		n++
	})
	return n, err
}
