GO ?= go

# Packages where races would be silent correctness bugs: the interface
# cache, the concurrent driver, and the DKY symbol tables.
RACE_PKGS = ./internal/ifacecache ./internal/core ./internal/symtab

.PHONY: check vet build test race bench clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) run ./cmd/m2bench -ifacecache -json BENCH_ifacecache.json

clean:
	$(GO) clean ./...
