GO ?= go

# Packages where races would be silent correctness bugs: the interface
# cache, the stream cache shared across concurrent compilations, the
# concurrent driver, the DKY symbol tables, the Supervisor scheduler,
# the fault-injection plans shared across task goroutines, the
# observability layer hooked into every task transition, the profiler
# consuming its dumps while compilations run, the concurrent static
# analyzer whose findings must be schedule-independent, the event
# primitive's lock-free fired fast path, and the token queues'
# producer-owned blocks and pooled recycling.
RACE_PKGS = ./internal/ifacecache ./internal/streamcache ./internal/core ./internal/symtab ./internal/sched ./internal/faultinject ./internal/obs ./internal/profile ./internal/check ./internal/event ./internal/tokq ./cmd/m2cd ./cmd/m2load

# Seeds for the chaos suite's seeded matrix (see chaos_test.go); the
# suite also hand-arms every injection point regardless of seeds.
CHAOS_SEEDS ?= 1,2,3,4,5,6,7,8,13,21,34,55,89,144

.PHONY: check vet build test race chaos smoke serve-smoke profile lint bench obsbench profilebench bench-sched bench-incr clean

check: vet build test race chaos smoke serve-smoke profile lint

# Standard vet, then the repo's own concurrency-invariant analyzers
# (internal/lint) via the go vet vettool protocol: raw event fires,
# un-nil-guarded obs methods, wall-clock reads in deterministic
# packages, undocumented mutex/chan fields.
vet:
	$(GO) vet ./...
	$(GO) build -o bin/m2vet ./cmd/m2vet
	$(GO) vet -vettool=$(abspath bin/m2vet) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run Chaos -count=1 .

# End-to-end observability smoke: compile an example module with -trace
# and validate the Chrome trace-event JSON it wrote.
smoke:
	$(GO) run ./cmd/m2c -I examples/modules -q -trace /tmp/m2c_smoke_trace.json Demo
	$(GO) run ./cmd/tracecheck /tmp/m2c_smoke_trace.json

# End-to-end serving smoke: start the m2cd daemon on an ephemeral
# port, saturate it with an m2load burst (byte-identity enforced,
# overload shed with 429), then SIGTERM mid-load and assert the
# healthz/readyz flip, a clean drain (exit 0), the final metrics
# snapshot, and a schema-valid BENCH_serve.json.
serve-smoke:
	bash scripts/serve_smoke.sh

# End-to-end profiler smoke: compile an example module with the
# critical-path profiler and the what-if replay, then cross-check the
# trace export (fires/waits/task IDs) with tracecheck.
profile:
	$(GO) run ./cmd/m2c -I examples/modules -q -profile -profile-json /tmp/m2c_profile.json Fib
	$(GO) run ./cmd/m2c -I examples/modules -q -whatif -workers 4 -trace /tmp/m2c_whatif_trace.json Fib
	$(GO) run ./cmd/tracecheck /tmp/m2c_whatif_trace.json

# Static analysis over the example modules: the clean fixtures must
# stay clean (-werror), and the findings fixture must match its golden
# file (also enforced, per DKY strategy, by lint_golden_test.go).
lint:
	$(GO) run ./cmd/m2lint -I examples/modules -werror LintClean Demo
	$(GO) run ./cmd/m2lint -I examples/modules LintFindings | diff examples/modules/LintFindings.golden -

bench:
	$(GO) run ./cmd/m2bench -ifacecache -json BENCH_ifacecache.json

obsbench:
	$(GO) run ./cmd/m2bench -obs -json BENCH_obs.json

profilebench:
	$(GO) run ./cmd/m2bench -profile -json BENCH_profile.json

# Scheduler benchmark: steal vs global-queue wall clock, allocations,
# and blocked-time blame, compared against the committed before
# snapshot (the single global ready queue and per-token locking).
bench-sched:
	$(GO) run ./cmd/m2bench -sched -json BENCH_sched.json -baseline BENCH_sched_before.json

# Incremental recompilation benchmark: one-procedure-edit warm rebuild
# against the stream cache vs a cold build of the same edited text.
# m2bench exits non-zero if the warm speedup falls below the 3x floor
# (bench.IncrBenchMinSpeedup); best-of-5 rides out scheduling noise.
bench-incr:
	$(GO) run ./cmd/m2bench -incr -runs 5 -json BENCH_incr.json

clean:
	$(GO) clean ./...
