GO ?= go

# Packages where races would be silent correctness bugs: the interface
# cache, the concurrent driver, the DKY symbol tables, the Supervisor
# scheduler, and the fault-injection plans shared across task goroutines.
RACE_PKGS = ./internal/ifacecache ./internal/core ./internal/symtab ./internal/sched ./internal/faultinject

# Seeds for the chaos suite's seeded matrix (see chaos_test.go); the
# suite also hand-arms every injection point regardless of seeds.
CHAOS_SEEDS ?= 1,2,3,4,5,6,7,8,13,21,34,55,89,144

.PHONY: check vet build test race chaos bench clean

check: vet build test race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run Chaos -count=1 .

bench:
	$(GO) run ./cmd/m2bench -ifacecache -json BENCH_ifacecache.json

clean:
	$(GO) clean ./...
