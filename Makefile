GO ?= go

# Packages where races would be silent correctness bugs: the interface
# cache, the concurrent driver, the DKY symbol tables, the Supervisor
# scheduler, the fault-injection plans shared across task goroutines,
# and the observability layer hooked into every task transition.
RACE_PKGS = ./internal/ifacecache ./internal/core ./internal/symtab ./internal/sched ./internal/faultinject ./internal/obs

# Seeds for the chaos suite's seeded matrix (see chaos_test.go); the
# suite also hand-arms every injection point regardless of seeds.
CHAOS_SEEDS ?= 1,2,3,4,5,6,7,8,13,21,34,55,89,144

.PHONY: check vet build test race chaos smoke bench obsbench clean

check: vet build test race chaos smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run Chaos -count=1 .

# End-to-end observability smoke: compile an example module with -trace
# and validate the Chrome trace-event JSON it wrote.
smoke:
	$(GO) run ./cmd/m2c -I examples/modules -q -trace /tmp/m2c_smoke_trace.json Demo
	$(GO) run ./cmd/tracecheck /tmp/m2c_smoke_trace.json

bench:
	$(GO) run ./cmd/m2bench -ifacecache -json BENCH_ifacecache.json

obsbench:
	$(GO) run ./cmd/m2bench -obs -json BENCH_obs.json

clean:
	$(GO) clean ./...
