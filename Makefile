GO ?= go

# Packages where races would be silent correctness bugs: the interface
# cache, the concurrent driver, the DKY symbol tables, the Supervisor
# scheduler, the fault-injection plans shared across task goroutines,
# the observability layer hooked into every task transition, and the
# profiler consuming its dumps while compilations run.
RACE_PKGS = ./internal/ifacecache ./internal/core ./internal/symtab ./internal/sched ./internal/faultinject ./internal/obs ./internal/profile

# Seeds for the chaos suite's seeded matrix (see chaos_test.go); the
# suite also hand-arms every injection point regardless of seeds.
CHAOS_SEEDS ?= 1,2,3,4,5,6,7,8,13,21,34,55,89,144

.PHONY: check vet build test race chaos smoke profile bench obsbench profilebench clean

check: vet build test race chaos smoke profile

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run Chaos -count=1 .

# End-to-end observability smoke: compile an example module with -trace
# and validate the Chrome trace-event JSON it wrote.
smoke:
	$(GO) run ./cmd/m2c -I examples/modules -q -trace /tmp/m2c_smoke_trace.json Demo
	$(GO) run ./cmd/tracecheck /tmp/m2c_smoke_trace.json

# End-to-end profiler smoke: compile an example module with the
# critical-path profiler and the what-if replay, then cross-check the
# trace export (fires/waits/task IDs) with tracecheck.
profile:
	$(GO) run ./cmd/m2c -I examples/modules -q -profile -profile-json /tmp/m2c_profile.json Fib
	$(GO) run ./cmd/m2c -I examples/modules -q -whatif -workers 4 -trace /tmp/m2c_whatif_trace.json Fib
	$(GO) run ./cmd/tracecheck /tmp/m2c_whatif_trace.json

bench:
	$(GO) run ./cmd/m2bench -ifacecache -json BENCH_ifacecache.json

obsbench:
	$(GO) run ./cmd/m2bench -obs -json BENCH_obs.json

profilebench:
	$(GO) run ./cmd/m2bench -profile -json BENCH_profile.json

clean:
	$(GO) clean ./...
