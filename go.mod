module m2cc

go 1.22
