// Quickstart: compile a small multi-module Modula-2+ program with the
// concurrent compiler, check it against the sequential baseline, link
// it and run it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"m2cc"
)

func main() {
	loader := m2cc.NewMapLoader()

	// A tiny library module: interface + implementation.
	loader.Add("Fib", m2cc.Def, `
DEFINITION MODULE Fib;
PROCEDURE Nth(n: INTEGER): INTEGER;
END Fib.
`)
	loader.Add("Fib", m2cc.Impl, `
IMPLEMENTATION MODULE Fib;

PROCEDURE Nth(n: INTEGER): INTEGER;
BEGIN
  IF n < 2 THEN RETURN n END;
  RETURN Nth(n-1) + Nth(n-2)
END Nth;

END Fib.
`)
	// The main module imports it both ways (qualified and FROM).
	loader.Add("Demo", m2cc.Impl, `
MODULE Demo;
FROM Fib IMPORT Nth;
IMPORT Fib;
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 10 DO
    WriteInt(Nth(i), 4)
  END;
  WriteLn;
  WriteString("Fib.Nth(20) = ");
  WriteInt(Fib.Nth(20), 0);
  WriteLn
END Demo.
`)

	// Compile concurrently: the module body, each procedure and each
	// imported interface become separately compiled streams.
	res := m2cc.Compile("Demo", loader, m2cc.Options{Workers: 8})
	if res.Failed() {
		log.Fatalf("compile failed:\n%s", res.Diags)
	}
	fmt.Printf("compiled Demo concurrently: %d streams\n", res.Streams)

	// The concurrent compiler's output is byte-identical to the
	// sequential baseline's — the paper's correctness invariant.
	seqr := m2cc.CompileSequential("Demo", loader)
	if res.Object.Listing() == seqr.Object.Listing() {
		fmt.Println("concurrent and sequential listings are identical")
	} else {
		log.Fatal("listings differ!")
	}

	// Link everything reachable from Demo and execute.
	prog, err := m2cc.BuildProgram("Demo", loader, m2cc.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program output:")
	if err := m2cc.Execute(prog, nil, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
