(* LintClean: golden fixture for the static analyzer — a module with
   zero findings.  The test suite asserts m2lint prints nothing. *)
MODULE LintClean;
FROM Fib IMPORT Nth;
VAR n, sum: INTEGER;

PROCEDURE Double(x: INTEGER): INTEGER;
BEGIN
  RETURN x + x
END Double;

BEGIN
  sum := 0;
  FOR n := 1 TO 5 DO
    sum := sum + Double(Nth(n))
  END;
  WriteInt(sum, 0); WriteLn
END LintClean.
