(* ConcFindings: golden fixture for the concurrency analyzer — one
   instance of every conc finding family, byte-matched against
   ConcFindings.golden by the test suite.  The defects are deliberate;
   do not "fix" them.

   counter is guarded by mu in Incr but touched bare in Peek and Reset
   (conc-guard); Forward orders fwd before rev while Backward reaches
   rev before fwd through Inner — a cross-procedure acquisition cycle
   (conc-deadlock); Stutter re-acquires the non-reentrant again
   (conc-double-lock). *)
MODULE ConcFindings;
VAR mu, fwd, rev, again: MUTEX;
VAR counter: INTEGER;

PROCEDURE Incr;
BEGIN
  LOCK mu DO
    counter := counter + 1
  END
END Incr;

PROCEDURE Peek(): INTEGER;
BEGIN
  RETURN counter
END Peek;

PROCEDURE Reset;
BEGIN
  counter := 0
END Reset;

PROCEDURE Forward;
BEGIN
  LOCK fwd DO
    LOCK rev DO
      Incr
    END
  END
END Forward;

PROCEDURE Inner;
BEGIN
  LOCK fwd DO
    Incr
  END
END Inner;

PROCEDURE Backward;
BEGIN
  LOCK rev DO
    Inner
  END
END Backward;

PROCEDURE Stutter;
BEGIN
  LOCK again DO
    LOCK again DO
      Reset
    END
  END
END Stutter;

BEGIN
  counter := 0;
  Incr;
  Forward;
  Backward;
  Stutter;
  Reset;
  WriteInt(Peek(), 0); WriteLn
END ConcFindings.
