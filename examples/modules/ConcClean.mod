(* ConcClean: golden fixture for the concurrency analyzer — a module
   whose locking discipline is consistent: every access to the shared
   counter holds mu, nested acquisitions always order io before mu, and
   no mutex is re-acquired.  The test suite asserts zero findings. *)
MODULE ConcClean;
VAR mu, io: MUTEX;
VAR hits: INTEGER;

PROCEDURE Bump;
BEGIN
  LOCK mu DO
    hits := hits + 1
  END
END Bump;

PROCEDURE Show;
BEGIN
  LOCK io DO
    LOCK mu DO
      WriteInt(hits, 0)
    END;
    WriteLn
  END
END Show;

BEGIN
  hits := 0;
  Bump;
  Show
END ConcClean.
