MODULE Demo;
FROM Fib IMPORT Nth;
IMPORT Fib;
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 10 DO
    WriteInt(Nth(i), 4)
  END;
  WriteLn;
  WriteString("Fib.Nth(20) = ");
  WriteInt(Fib.Nth(20), 0);
  WriteLn
END Demo.
