(* LintFindings: golden fixture for the static analyzer — one instance
   of every finding class, byte-matched against LintFindings.golden by
   the test suite.  The defects are deliberate; do not "fix" them. *)
MODULE LintFindings;
IMPORT Fib;                        (* unused import *)
FROM Shapes IMPORT Area, Perimeter; (* Perimeter: unused imported identifier *)
VAR total: INTEGER;

PROCEDURE Compute(w: INTEGER; pad: INTEGER): INTEGER;
VAR r, leftover: INTEGER;          (* leftover: unused local *)
BEGIN
  r := Area(w, w);
  RETURN r
END Compute;                       (* pad: unused parameter *)

PROCEDURE Risky(): INTEGER;
VAR u: INTEGER;
BEGIN
  IF total > 0 THEN u := 1 END;
  RETURN u                         (* u may be used before initialization *)
END Risky;

PROCEDURE AfterReturn(): INTEGER;
BEGIN
  RETURN 0;
  total := 1                       (* unreachable statement *)
END AfterReturn;

PROCEDURE Orphan;                  (* never called *)
BEGIN
  total := 0
END Orphan;

BEGIN
  total := Compute(3, 4) + Risky() + AfterReturn();
  WriteInt(total, 0); WriteLn
END LintFindings.
