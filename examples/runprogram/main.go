// Run a realistic Modula-2+ program — Eratosthenes' sieve plus the
// eight-queens counter, written with records, sets, open arrays, nested
// procedures and an exception — compiled concurrently on 8 workers and
// executed on the package's abstract machine.
//
//	go run ./examples/runprogram
package main

import (
	"log"
	"os"

	"m2cc"
)

const program = `
MODULE Puzzles;

CONST Limit = 100;

EXCEPTION BadInput;

TYPE
  Flags = ARRAY [2..Limit] OF BOOLEAN;
  Board = RECORD
    cols, diag1, diag2: BITSET;
    placed: INTEGER
  END;

VAR
  sieve: Flags;
  count, i: INTEGER;
  solutions: INTEGER;

PROCEDURE Primes(VAR f: Flags): INTEGER;
VAR i, j, n: INTEGER;
BEGIN
  FOR i := 2 TO Limit DO f[i] := TRUE END;
  n := 0;
  FOR i := 2 TO Limit DO
    IF f[i] THEN
      INC(n);
      j := i + i;
      WHILE j <= Limit DO
        f[j] := FALSE;
        j := j + i
      END
    END
  END;
  RETURN n
END Primes;

PROCEDURE Queens(n: INTEGER): INTEGER;
VAR b: Board; total: INTEGER;

  PROCEDURE Place(row: INTEGER);
  VAR c: INTEGER;
  BEGIN
    IF row = n THEN
      INC(total);
      RETURN
    END;
    FOR c := 0 TO n - 1 DO
      IF NOT (c IN b.cols) AND NOT ((row + c) IN b.diag1) AND
         NOT ((row - c + n - 1) IN b.diag2) THEN
        INCL(b.cols, c); INCL(b.diag1, row + c); INCL(b.diag2, row - c + n - 1);
        Place(row + 1);
        EXCL(b.cols, c); EXCL(b.diag1, row + c); EXCL(b.diag2, row - c + n - 1)
      END
    END
  END Place;

BEGIN
  IF (n < 1) OR (n > 10) THEN RAISE BadInput END;
  total := 0;
  b.cols := {}; b.diag1 := {}; b.diag2 := {};
  Place(0);
  RETURN total
END Queens;

BEGIN
  count := Primes(sieve);
  WriteString("primes below "); WriteInt(Limit, 0);
  WriteString(": "); WriteInt(count, 0); WriteLn;
  WriteString("first few:");
  FOR i := 2 TO 30 DO
    IF sieve[i] THEN WriteInt(i, 3) END
  END;
  WriteLn;
  FOR i := 4 TO 8 DO
    solutions := Queens(i);
    WriteInt(i, 0); WriteString("-queens solutions: ");
    WriteInt(solutions, 0); WriteLn
  END;
  TRY
    solutions := Queens(99)
  EXCEPT
    BadInput: WriteString("Queens(99) rejected, as it should be"); WriteLn
  END
END Puzzles.
`

func main() {
	loader := m2cc.NewMapLoader()
	loader.Add("Puzzles", m2cc.Impl, program)

	prog, err := m2cc.BuildProgram("Puzzles", loader, m2cc.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := m2cc.Execute(prog, nil, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
