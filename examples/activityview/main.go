// Activity view: reproduce the paper's WatchTool pictures (Figures 4
// and 7) for one compilation — per-processor activity over time, with
// the task kinds distinguished: L lexing, S splitting, I importing,
// P parsing/declaration analysis, G statement analysis/code generation,
// M merging.
//
//	go run ./examples/activityview
package main

import (
	"fmt"
	"log"

	"m2cc"
	"m2cc/internal/bench"
	"m2cc/internal/workload"
)

func main() {
	suite := workload.GenerateSuite(1992, 0.3)
	prog := suite.Programs[30] // a large program: long right-hand G phase
	fmt.Printf("compiling %s (%d bytes, %d procedures, %d interfaces) on 8 simulated processors\n\n",
		prog.Name, prog.Bytes, prog.Procedures, prog.Imports)

	res := m2cc.Compile(prog.Name, suite.Loader, m2cc.Options{Workers: 1, Trace: true})
	if res.Failed() {
		log.Fatalf("compile failed:\n%s", res.Diags)
	}

	r := m2cc.Simulate(res.Trace, m2cc.SimOptions{
		Processors: 8, Strategy: m2cc.Skeptical,
		LongBeforeShort: true, BoostResolver: true,
		CollectTimeline: true,
	})
	fmt.Print(bench.RenderTimeline(r.Timeline, 8, r.Makespan, 110))
	fmt.Println("\nlegend: L lexical  S splitter  I importer  P parser/decl-analysis  G stmt-analysis/codegen  M merge  . idle")
	fmt.Printf("\nmakespan %.0f work units, utilization %.0f%%, DKY blockages %d\n",
		r.Makespan, 100*r.Utilization(8), r.Blocks)
	fmt.Println("\nnote the paper's shape: lexing and interface parsing on the left, the")
	fmt.Println("activity lull while procedure headings are processed in the main module")
	fmt.Println("(§2.4), then the wide statement-analysis/code-generation phase.")
}
