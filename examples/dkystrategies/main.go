// DKY strategies: compile an import-heavy generated program under all
// four Doesn't-Know-Yet strategies (§2.2 of the paper), verify every
// strategy yields identical output, and compare their simulated
// 8-processor compile times and blockage counts.
//
//	go run ./examples/dkystrategies
package main

import (
	"fmt"
	"log"

	"m2cc"
	"m2cc/internal/workload"
)

func main() {
	// A mid-sized program from the generated test suite: 40 procedures,
	// a few dozen imported interfaces — plenty of cross-stream lookups.
	suite := workload.GenerateSuite(7, 0.3)
	prog := suite.Programs[24]
	fmt.Printf("program %s: %d bytes, %d procedures, %d imported interfaces\n\n",
		prog.Name, prog.Bytes, prog.Procedures, prog.Imports)

	// Reference output (sequential).
	want := m2cc.CompileSequential(prog.Name, suite.Loader).Object.Listing()

	// One deterministic trace drives the simulated comparison.
	tres := m2cc.Compile(prog.Name, suite.Loader, m2cc.Options{Workers: 1, Trace: true})
	if tres.Failed() {
		log.Fatalf("trace compile failed:\n%s", tres.Diags)
	}

	fmt.Printf("%-12s %10s %9s %8s   %s\n", "strategy", "makespan", "speedup", "blocks", "output")
	base := m2cc.Simulate(tres.Trace, m2cc.SimOptions{
		Processors: 1, Strategy: m2cc.Skeptical, LongBeforeShort: true, BoostResolver: true,
	}).Makespan
	for _, s := range []m2cc.Strategy{m2cc.Avoidance, m2cc.Pessimistic, m2cc.Skeptical, m2cc.Optimistic} {
		// Real concurrent compilation under this strategy must match
		// the sequential output exactly: DKY handling changes timing,
		// never results.
		res := m2cc.Compile(prog.Name, suite.Loader, m2cc.Options{Workers: 8, Strategy: s})
		verdict := "identical"
		if res.Failed() || res.Object.Listing() != want {
			verdict = "DIFFERS (bug!)"
		}

		r := m2cc.Simulate(tres.Trace, m2cc.SimOptions{
			Processors: 8, Strategy: s, LongBeforeShort: true, BoostResolver: true,
		})
		fmt.Printf("%-12s %10.0f %9.2f %8d   %s\n",
			s, r.Makespan, base/r.Makespan, r.Blocks, verdict)
	}
	fmt.Println("\nthe paper's finding: Skeptical handling is the best compromise —")
	fmt.Println("it searches incomplete tables before blocking, so most lookups that")
	fmt.Println("would stall under Pessimistic handling succeed immediately (§2.2).")
}
