package m2cc_test

import (
	"strings"
	"testing"

	"m2cc"
)

// TestPublicAPIQuickstart exercises the README's quick-start path end
// to end through the exported facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	loader := m2cc.NewMapLoader()
	loader.Add("Hello", m2cc.Impl, `
MODULE Hello;
VAR i: INTEGER;
PROCEDURE Twice(x: INTEGER): INTEGER;
BEGIN
  RETURN 2 * x
END Twice;
BEGIN
  FOR i := 1 TO 3 DO WriteInt(Twice(i), 3) END;
  WriteLn
END Hello.
`)
	res := m2cc.Compile("Hello", loader, m2cc.Options{Workers: 4})
	if res.Failed() {
		t.Fatalf("compile failed:\n%s", res.Diags)
	}
	if res.Streams < 2 {
		t.Fatalf("streams = %d", res.Streams)
	}
	seqr := m2cc.CompileSequential("Hello", loader)
	if res.Object.Listing() != seqr.Object.Listing() {
		t.Fatal("outputs differ between compilers")
	}
	prog, err := m2cc.BuildProgram("Hello", loader, m2cc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := m2cc.Execute(prog, nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "  2  4  6\n" {
		t.Fatalf("got %q", out.String())
	}
}

// TestPublicAPITraceAndSimulate drives the trace → simulate path.
func TestPublicAPITraceAndSimulate(t *testing.T) {
	loader := m2cc.NewMapLoader()
	loader.Add("W", m2cc.Impl, `
MODULE W;
PROCEDURE A(): INTEGER;
BEGIN
  RETURN 1
END A;
PROCEDURE B(): INTEGER;
BEGIN
  RETURN A() + 1
END B;
BEGIN
  WriteInt(B(), 0); WriteLn
END W.
`)
	res := m2cc.Compile("W", loader, m2cc.Options{Workers: 1, Trace: true})
	if res.Failed() || res.Trace == nil {
		t.Fatalf("trace compile failed:\n%s", res.Diags)
	}
	one := m2cc.Simulate(res.Trace, m2cc.SimOptions{Processors: 1,
		Strategy: m2cc.Skeptical, LongBeforeShort: true, BoostResolver: true})
	four := m2cc.Simulate(res.Trace, m2cc.SimOptions{Processors: 4,
		Strategy: m2cc.Skeptical, LongBeforeShort: true, BoostResolver: true})
	if !(four.Makespan <= one.Makespan) {
		t.Fatalf("more processors must not be slower: %f vs %f", four.Makespan, one.Makespan)
	}
}

// TestPublicAPIErrorPath: failing programs surface sorted diagnostics.
func TestPublicAPIErrorPath(t *testing.T) {
	loader := m2cc.NewMapLoader()
	loader.Add("Bad", m2cc.Impl, "MODULE Bad;\nBEGIN\n  x := 1\nEND Bad.")
	res := m2cc.Compile("Bad", loader, m2cc.Options{Workers: 2})
	if !res.Failed() {
		t.Fatal("must fail")
	}
	if !strings.Contains(res.Diags.String(), "undeclared identifier x") {
		t.Fatalf("diags:\n%s", res.Diags)
	}
	if _, err := m2cc.BuildProgram("Bad", loader, m2cc.Options{}); err == nil {
		t.Fatal("BuildProgram must propagate compile errors")
	}
}

// TestParseStrategyNames covers the exported strategy surface.
func TestParseStrategyNames(t *testing.T) {
	s, err := m2cc.ParseStrategy("optimistic")
	if err != nil || s != m2cc.Optimistic {
		t.Fatalf("%v %v", s, err)
	}
	if _, err := m2cc.ParseStrategy("nope"); err == nil {
		t.Fatal("want error")
	}
}
