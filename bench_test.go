// Benchmarks regenerating the paper's evaluation, one per table and
// figure (see DESIGN.md's experiment index).  Each benchmark measures
// the cost of regenerating its artifact and reports the headline
// numbers as custom metrics, so `go test -bench=. -benchmem` doubles as
// a compact reproduction report.
//
// The workload scale is reduced (0.25) to keep -bench runs quick; run
// cmd/m2bench for the paper-sized versions.
package m2cc_test

import (
	"sync"
	"testing"

	"m2cc"
	"m2cc/internal/bench"
	"m2cc/internal/symtab"
	"m2cc/internal/workload"
)

const benchScale = 0.25

var (
	harnessOnce sync.Once
	harness     *bench.Harness
	harnessErr  error
)

// sharedHarness prepares the traced workload once for all benchmarks.
func sharedHarness(b *testing.B) *bench.Harness {
	b.Helper()
	harnessOnce.Do(func() {
		harness, harnessErr = bench.New(bench.Config{Scale: benchScale})
	})
	if harnessErr != nil {
		b.Fatal(harnessErr)
	}
	return harness
}

// BenchmarkTable1SuiteCompile regenerates Table 1: it compiles the
// whole generated test suite sequentially and summarizes its
// characteristics.
func BenchmarkTable1SuiteCompile(b *testing.B) {
	h := sharedHarness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
	suite := h.Suite
	b.ReportMetric(float64(len(suite.Programs)), "programs")
}

// BenchmarkFigure1SuiteSpeedup regenerates Figure 1 (and the Min/Mean/
// Max columns of Table 3): the suite speedup sweep over 1..8 simulated
// processors.
func BenchmarkFigure1SuiteSpeedup(b *testing.B) {
	h := sharedHarness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Figure1()) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(h.MeanSpeedup(8), "speedup@8")
}

// BenchmarkFigure2BestCase regenerates Figure 2: the synthetic module's
// near-linear curve against the best human-authored module and the
// linear reference.
func BenchmarkFigure2BestCase(b *testing.B) {
	h := sharedHarness(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = h.Figure2()
	}
	_ = out
}

// BenchmarkFigure3Quartiles regenerates Figure 3: speedup by
// sequential-compile-time quartiles.
func BenchmarkFigure3Quartiles(b *testing.B) {
	h := sharedHarness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Figure3()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure4WatchTool regenerates Figure 4: activity timelines
// for one program per quartile plus Synth.mod at P=8.
func BenchmarkFigure4WatchTool(b *testing.B) {
	h := sharedHarness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Figure4()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable2LookupStats regenerates Table 2: identifier lookup
// statistics under Skeptical handling at P=8, aggregated over the
// suite.
func BenchmarkTable2LookupStats(b *testing.B) {
	h := sharedHarness(b)
	var stats *m2cc.Stats
	for i := 0; i < b.N; i++ {
		stats = h.Table2(8)
	}
	b.ReportMetric(float64(stats.Lookups.Load()), "lookups")
	b.ReportMetric(float64(stats.Blocks.Load()), "DKY-blocks")
}

// BenchmarkTable3Summary regenerates the full Table 3.
func BenchmarkTable3Summary(b *testing.B) {
	h := sharedHarness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure7ActivityView regenerates Figure 7: the task-kind
// activity view of the suite's largest compilation.
func BenchmarkFigure7ActivityView(b *testing.B) {
	h := sharedHarness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Figure7()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkSequentialVsConcurrent1 measures the §4.2 claim: the
// concurrent compiler restricted to one worker pays a small overhead
// over the sequential compiler (the paper measured 4.3%).
func BenchmarkSequentialVsConcurrent1(b *testing.B) {
	h := sharedHarness(b)
	var ov bench.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		if ov, err = h.Overhead(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ov.UnitsPct, "overhead-units-%")
	b.ReportMetric(ov.Percent, "overhead-wall-%")
}

// BenchmarkDKYStrategyAblation measures the §2.2 claim: the choice of
// DKY strategy moves overall compile time by roughly 10%.
func BenchmarkDKYStrategyAblation(b *testing.B) {
	h := sharedHarness(b)
	var rel map[symtab.Strategy]float64
	for i := 0; i < b.N; i++ {
		rel = h.StrategyAblation(8)
	}
	b.ReportMetric(100*(rel[symtab.Avoidance]-1), "avoidance-%")
	b.ReportMetric(100*(rel[symtab.Pessimistic]-1), "pessimistic-%")
	b.ReportMetric(100*(rel[symtab.Optimistic]-1), "optimistic-%")
}

// BenchmarkHeaderModeAblation measures the §2.4 claim: re-processing
// headings in the child scope (alternative 3) costs about 3%.
func BenchmarkHeaderModeAblation(b *testing.B) {
	h := sharedHarness(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := h.HeaderAblation(8)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r
	}
	b.ReportMetric(100*(ratio-1), "alt3-slowdown-%")
}

// BenchmarkLongShortAblation measures the §2.3.4 claim: generating code
// for long procedures first avoids a sequential tail.
func BenchmarkLongShortAblation(b *testing.B) {
	h := sharedHarness(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = h.OrderingAblation(8)
	}
	b.ReportMetric(100*(ratio-1), "no-ordering-slowdown-%")
}

// BenchmarkConcurrentCompile measures raw concurrent compilation
// throughput on a mid-sized generated module.
func BenchmarkConcurrentCompile(b *testing.B) {
	h := sharedHarness(b)
	prog := h.Suite.Programs[20]
	b.SetBytes(int64(prog.Bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m2cc.Compile(prog.Name, h.Suite.Loader, m2cc.Options{Workers: 4})
		if res.Failed() {
			b.Fatalf("compile failed:\n%s", res.Diags)
		}
	}
}

// BenchmarkSequentialCompile is the sequential counterpart.
func BenchmarkSequentialCompile(b *testing.B) {
	h := sharedHarness(b)
	prog := h.Suite.Programs[20]
	b.SetBytes(int64(prog.Bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m2cc.CompileSequential(prog.Name, h.Suite.Loader)
		if res.Failed() {
			b.Fatalf("compile failed:\n%s", res.Diags)
		}
	}
}

// BenchmarkSynthTraceAndSim measures the full best-case pipeline:
// generate Synth.mod, trace-compile it and simulate 8 processors.
func BenchmarkSynthTraceAndSim(b *testing.B) {
	loader := m2cc.NewMapLoader()
	workload.GenerateSynth(loader, 32, 6, nil)
	var speedup float64
	for i := 0; i < b.N; i++ {
		res := m2cc.Compile("Synth", loader, m2cc.Options{Workers: 1, Trace: true})
		if res.Failed() {
			b.Fatal("Synth failed")
		}
		opts := m2cc.SimOptions{Processors: 1, Strategy: m2cc.Skeptical,
			LongBeforeShort: true, BoostResolver: true}
		base := m2cc.Simulate(res.Trace, opts).Makespan
		opts.Processors = 8
		speedup = base / m2cc.Simulate(res.Trace, opts).Makespan
	}
	b.ReportMetric(speedup, "synth-speedup@8")
}
