#!/usr/bin/env bash
# serve-smoke: end-to-end drill of the m2cd compile daemon and the
# m2load generator.
#
#   1. Start m2cd on an ephemeral port with deliberately small
#      admission capacity, and confirm healthz/readyz report serving.
#   2. Saturate it with a closed-loop m2load burst at ~4x capacity
#      with -expect-identical: every 200 body must be byte-identical,
#      overload must be answered with 429/503, and the report
#      (BENCH_serve.json) must be schema-valid.
#   3. Send SIGTERM mid-load and verify the graceful drain: healthz
#      flips to "draining", readyz flips to 503 while the listener is
#      still up (the -drain-grace window), in-flight work finishes,
#      the final metrics snapshot is written, and the daemon exits 0.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

go build -o "$TMP/m2cd" ./cmd/m2cd
go build -o "$TMP/m2load" ./cmd/m2load

"$TMP/m2cd" -addr 127.0.0.1:0 -ready-file "$TMP/addr" \
    -max-inflight 2 -queue 2 -workers 4 \
    -drain-grace 2s -drain-timeout 10s \
    -metrics-out "$TMP/metrics.json" 2>"$TMP/m2cd.log" &
DPID=$!

for _ in $(seq 1 100); do [ -s "$TMP/addr" ] && break; sleep 0.1; done
[ -s "$TMP/addr" ] || fail "daemon never wrote its ready file (log: $(cat "$TMP/m2cd.log"))"
ADDR=$(head -n1 "$TMP/addr")

# 1. Liveness and readiness while serving.
[ "$(curl -fsS "http://$ADDR/healthz")" = "ok" ] || fail "healthz != ok"
[ "$(curl -fsS "http://$ADDR/readyz")" = "ready" ] || fail "readyz != ready"

# 2. Saturating burst: 8 workers against capacity 4 (2 in flight + 2
#    queued).  Byte-identity of every 200 body is enforced by m2load.
"$TMP/m2load" -addr "$ADDR" -n 60 -c 8 -clients 3 -expect-identical \
    -out BENCH_serve.json || fail "m2load burst failed"

python3 - BENCH_serve.json <<'EOF' || fail "BENCH_serve.json schema invalid"
import json, sys
r = json.load(open(sys.argv[1]))
for k in ("target", "mode", "concurrency", "duration_ms", "sent", "ok",
          "shed", "unavail", "errors", "mismatch", "by_status",
          "throughput_rps", "latency_ms"):
    assert k in r, f"missing field {k!r}"
for k in ("mean", "p50", "p90", "p99", "p999", "max"):
    assert k in r["latency_ms"], f"missing latency field {k!r}"
assert r["ok"] > 0, "no successful responses"
assert r["mismatch"] == 0, "byte-identity violated"
assert r["sent"] == 60, f"sent {r['sent']} != 60"
EOF

# 3. Graceful drain under load: a background burst keeps requests in
#    flight while SIGTERM lands.
"$TMP/m2load" -addr "$ADDR" -n 0 -duration 4s -c 4 \
    -out "$TMP/drain_burst.json" >/dev/null 2>&1 &
LPID=$!
sleep 0.5
kill -TERM "$DPID"
sleep 0.3  # inside the 2s drain-grace window: probes must still answer
[ "$(curl -fsS "http://$ADDR/healthz")" = "draining" ] || fail "healthz did not flip to draining"
READY_CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
[ "$READY_CODE" = "503" ] || fail "readyz during drain returned $READY_CODE, want 503"

wait "$DPID" && DCODE=0 || DCODE=$?
DPID=""
[ "$DCODE" = "0" ] || fail "daemon exit code $DCODE, want 0 (clean drain); log: $(cat "$TMP/m2cd.log")"
wait "$LPID" 2>/dev/null || true

[ -s "$TMP/metrics.json" ] || fail "final metrics snapshot missing"
python3 - "$TMP/metrics.json" <<'EOF' || fail "final metrics snapshot invalid"
import json, sys
m = json.load(open(sys.argv[1]))
assert m["draining"] is True, "snapshot not marked draining"
assert m["admitted"] > 0, "no requests admitted"
for k in ("completed", "shed_queue_full", "deadline_canceled",
          "handler_panics", "by_status", "cache"):
    assert k in m, f"missing field {k!r}"
EOF

echo "serve-smoke: ok ($(python3 -c 'import json; r = json.load(open("BENCH_serve.json")); print("%d ok / %d shed / p99 %.0fms" % (r["ok"], r["shed"], r["latency_ms"]["p99"]))'))"
