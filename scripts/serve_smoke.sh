#!/usr/bin/env bash
# serve-smoke: end-to-end drill of the m2cd compile daemon and the
# m2load generator.
#
#   1. Start m2cd on an ephemeral port with deliberately small
#      admission capacity and sampled tracing, and confirm
#      healthz/readyz report serving.
#   2. Fetch the first admission's trace (always sampled) through
#      /debug/trace and validate it with tracecheck; check its
#      /profile blame report parses.
#   3. Saturate it with a closed-loop m2load burst at ~4x capacity
#      with -expect-identical: every 200 body must be byte-identical,
#      overload must be answered with 429/503, and the report
#      (BENCH_serve.json) must be schema-valid.  A second short burst
#      exercises -fetch-slowest trace capture.
#   4. Scrape /metrics?format=prometheus and check the exposition:
#      histogram buckets cumulative-monotone, le="+Inf" == _count,
#      and the serving counters moved.
#   5. Send SIGTERM mid-load and verify the graceful drain: healthz
#      flips to "draining", readyz flips to 503 while the listener is
#      still up (the -drain-grace window), in-flight work finishes,
#      the final metrics snapshot is written, and the daemon exits 0.
#   6. Re-measure the sampled-tracing overhead budget: m2bench -obs
#      exits non-zero if the serve section exceeds +5%, failing the
#      smoke (and CI) loudly.  Runs at full scale: tiny -scale values
#      shrink request bodies until fixed per-request hook costs
#      dominate and the percentage is meaningless.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

go build -o "$TMP/m2cd" ./cmd/m2cd
go build -o "$TMP/m2load" ./cmd/m2load
go build -o "$TMP/tracecheck" ./cmd/tracecheck
go build -o "$TMP/m2bench" ./cmd/m2bench

"$TMP/m2cd" -addr 127.0.0.1:0 -ready-file "$TMP/addr" \
    -max-inflight 2 -queue 2 -workers 4 \
    -drain-grace 2s -drain-timeout 10s \
    -trace sampled -trace-sample 4 -trace-keep 16 -quiet \
    -metrics-out "$TMP/metrics.json" 2>"$TMP/m2cd.log" &
DPID=$!

for _ in $(seq 1 100); do [ -s "$TMP/addr" ] && break; sleep 0.1; done
[ -s "$TMP/addr" ] || fail "daemon never wrote its ready file (log: $(cat "$TMP/m2cd.log"))"
ADDR=$(head -n1 "$TMP/addr")

# 1. Liveness and readiness while serving.
[ "$(curl -fsS "http://$ADDR/healthz")" = "ok" ] || fail "healthz != ok"
[ "$(curl -fsS "http://$ADDR/readyz")" = "ready" ] || fail "readyz != ready"

# 2. Request-scoped tracing end to end.  The first admission is always
#    sampled (1-in-N starts at sequence 1), and the client-chosen
#    X-M2cd-Trace header names the trace, so the fetch is deterministic.
python3 - examples/modules > "$TMP/req.json" <<'EOF' || fail "could not build compile request"
import json, pathlib, sys
d = pathlib.Path(sys.argv[1])
srcs = [{"name": p.stem, "kind": p.suffix[1:], "text": p.read_text()}
        for p in (d / n for n in ("Demo.mod", "Fib.def", "Fib.mod"))]
json.dump({"module": "Demo", "sources": srcs, "client": "smoke"}, sys.stdout)
EOF
curl -fsS -X POST -H 'Content-Type: application/json' \
    -H 'X-M2cd-Trace: smoke-trace' --data @"$TMP/req.json" \
    "http://$ADDR/compile" -o /dev/null || fail "traced compile request failed"
curl -fsS "http://$ADDR/debug/trace/smoke-trace" -o "$TMP/trace.json" \
    || fail "sampled trace not retrievable from /debug/trace"
"$TMP/tracecheck" "$TMP/trace.json" || fail "fetched trace failed tracecheck"
curl -fsS "http://$ADDR/debug/trace/smoke-trace/profile?format=json" \
    -o "$TMP/blame.json" || fail "trace profile endpoint failed"
python3 - "$TMP/blame.json" <<'EOF' || fail "blame report invalid"
import json, sys
p = json.load(open(sys.argv[1]))
assert "total_blocked_ms" in p and "events" in p, "profile missing blame fields"
EOF

#    A lint request against the concurrency fixture must report its
#    per-family finding counts in the X-M2cd-Findings header and move
#    the m2cd_lint_findings_total counter (checked in step 4).
python3 - examples/modules > "$TMP/lintreq.json" <<'EOF' || fail "could not build lint request"
import json, pathlib, sys
d = pathlib.Path(sys.argv[1])
srcs = [{"name": "ConcFindings", "kind": "mod",
         "text": (d / "ConcFindings.mod").read_text()}]
json.dump({"module": "ConcFindings", "sources": srcs, "client": "smoke"}, sys.stdout)
EOF
curl -fsS -D "$TMP/lint_headers.txt" -X POST -H 'Content-Type: application/json' \
    --data @"$TMP/lintreq.json" "http://$ADDR/lint" -o "$TMP/lint.json" \
    || fail "lint request failed"
grep -qi '^X-M2cd-Findings: conc-deadlock=1,conc-double-lock=1,conc-guard=2' \
    "$TMP/lint_headers.txt" \
    || fail "lint response missing per-family X-M2cd-Findings header: $(grep -i findings "$TMP/lint_headers.txt" || true)"

# 3. Saturating burst: 8 workers against capacity 4 (2 in flight + 2
#    queued).  Byte-identity of every 200 body is enforced by m2load.
"$TMP/m2load" -addr "$ADDR" -n 60 -c 8 -clients 3 -expect-identical \
    -out BENCH_serve.json || fail "m2load burst failed"

#    A second, small burst exercises slowest-trace capture: the report
#    must record per-request trace IDs and save any fetchable traces
#    beside its output.
"$TMP/m2load" -addr "$ADDR" -n 12 -c 2 -fetch-slowest 3 \
    -out "$TMP/slow.json" >/dev/null || fail "m2load -fetch-slowest burst failed"
python3 - "$TMP/slow.json" <<'EOF' || fail "slowest-trace report invalid"
import json, sys
r = json.load(open(sys.argv[1]))
slow = r.get("slowest_traces") or []
assert len(slow) == 3, f"expected 3 slowest entries, got {len(slow)}"
for s in slow:
    assert s["trace_id"], "slowest entry without a trace ID"
    assert s["latency_ms"] > 0, "slowest entry without a latency"
EOF

# 4. Prometheus exposition: text format, cumulative-monotone histogram
#    buckets, +Inf bucket equal to the count, counters moved.
curl -fsS "http://$ADDR/metrics?format=prometheus" > "$TMP/prom.txt" \
    || fail "prometheus scrape failed"
python3 - "$TMP/prom.txt" <<'EOF' || fail "prometheus exposition invalid"
import re, sys
text = open(sys.argv[1]).read()
assert re.search(r'^m2cd_admitted_total [1-9]', text, re.M), "admitted_total never moved"
assert re.search(r'^m2cd_responses_total\{code="200"\} [1-9]', text, re.M), "no 200s counted"
assert re.search(r'^m2cd_trace_admitted_total [1-9]', text, re.M), "no traces admitted"
assert re.search(r'^m2cd_lint_findings_total\{family="conc-guard"\} [1-9]', text, re.M), \
    "lint findings counter never moved"
assert re.search(r'^m2cd_lint_findings_total\{family="conc-deadlock"\} [1-9]', text, re.M), \
    "deadlock findings counter never moved"
fams = re.findall(r'^# TYPE (\S+) histogram$', text, re.M)
assert "m2cd_request_duration_ms" in fams, "latency histogram family missing"
for fam in fams:
    buckets = [(le, int(v)) for le, v in
               re.findall(r'^%s_bucket\{le="([^"]+)"\} (\d+)$' % fam, text, re.M)]
    assert buckets, f"{fam}: no buckets"
    counts = [v for _, v in buckets]
    assert counts == sorted(counts), f"{fam}: buckets not cumulative-monotone"
    count = int(re.search(r'^%s_count (\d+)$' % fam, text, re.M).group(1))
    inf = dict(buckets)["+Inf"]
    assert inf == count, f"{fam}: +Inf bucket {inf} != count {count}"
EOF

python3 - BENCH_serve.json <<'EOF' || fail "BENCH_serve.json schema invalid"
import json, sys
r = json.load(open(sys.argv[1]))
for k in ("target", "mode", "concurrency", "duration_ms", "sent", "ok",
          "shed", "unavail", "errors", "mismatch", "by_status",
          "throughput_rps", "latency_ms"):
    assert k in r, f"missing field {k!r}"
for k in ("mean", "p50", "p90", "p99", "p999", "max"):
    assert k in r["latency_ms"], f"missing latency field {k!r}"
assert r["ok"] > 0, "no successful responses"
assert r["mismatch"] == 0, "byte-identity violated"
assert r["sent"] == 60, f"sent {r['sent']} != 60"
EOF

# 5. Graceful drain under load: a background burst keeps requests in
#    flight while SIGTERM lands.
"$TMP/m2load" -addr "$ADDR" -n 0 -duration 4s -c 4 \
    -out "$TMP/drain_burst.json" >/dev/null 2>&1 &
LPID=$!
sleep 0.5
kill -TERM "$DPID"
sleep 0.3  # inside the 2s drain-grace window: probes must still answer
[ "$(curl -fsS "http://$ADDR/healthz")" = "draining" ] || fail "healthz did not flip to draining"
READY_CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
[ "$READY_CODE" = "503" ] || fail "readyz during drain returned $READY_CODE, want 503"

wait "$DPID" && DCODE=0 || DCODE=$?
DPID=""
[ "$DCODE" = "0" ] || fail "daemon exit code $DCODE, want 0 (clean drain); log: $(cat "$TMP/m2cd.log")"
wait "$LPID" 2>/dev/null || true

[ -s "$TMP/metrics.json" ] || fail "final metrics snapshot missing"
python3 - "$TMP/metrics.json" <<'EOF' || fail "final metrics snapshot invalid"
import json, sys
m = json.load(open(sys.argv[1]))
assert m["draining"] is True, "snapshot not marked draining"
assert m["admitted"] > 0, "no requests admitted"
for k in ("completed", "shed_queue_full", "deadline_canceled",
          "handler_panics", "by_status", "cache"):
    assert k in m, f"missing field {k!r}"
EOF

# 6. Sampled-tracing overhead budget, measured at full scale and
#    enforced by m2bench's exit code (serve section must stay <= +5%).
"$TMP/m2bench" -obs -json BENCH_obs.json > "$TMP/obs.txt" 2>&1 \
    || fail "sampled tracing overhead exceeds budget: $(tail -n3 "$TMP/obs.txt")"

echo "serve-smoke: ok ($(python3 -c 'import json; r = json.load(open("BENCH_serve.json")); print("%d ok / %d shed / p99 %.0fms" % (r["ok"], r["shed"], r["latency_ms"]["p99"]))'))"
